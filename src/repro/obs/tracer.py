"""Virtual-time tracing of the simulated world, Perfetto-exportable.

Every interesting moment of a run — the message lifecycle (broadcast →
in-flight → deliver / drop / hold / release), update and query invocations
with their replay cost, crash / recover, fsync truncation, anti-entropy
rounds — can be emitted as a structured record stamped with the cluster's
*virtual* clock (``Cluster.now``).  There is deliberately no wall-clock
anywhere in this module: a trace of a seeded run is itself a pure function
of the seed, so traces diff cleanly across machines and commits.

Two tracers:

* :class:`NullTracer` — the default.  ``enabled`` is ``False`` and every
  hook is an allocation-free no-op; instrumented hot paths guard their
  attribute building with ``if tracer.enabled:`` so an untraced run pays
  one attribute load and a branch per site.
* :class:`SimTracer` — records everything into an in-memory list of
  :class:`TraceRecord`; export with :func:`to_chrome_trace` /
  :func:`write_chrome_trace` to get a Chrome-trace-event JSON file that
  loads directly into Perfetto (https://ui.perfetto.dev) with one track
  per replica.

Record naming convention (dotted, category first)::

    message.send / message.deliver / message.lost / message.duplicated /
    message.drop_to_crashed / channel.hold / channel.release /
    channel.partition / channel.heal / op.update / op.query /
    replica.crash / replica.recover / sync.request / anti_entropy.round
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, TextIO

#: The cluster-wide track (events with no owning replica).
CLUSTER_TRACK = -1


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One structured trace record in virtual time.

    ``end`` is ``None`` for instant events; spans carry ``start < end``
    (both in the cluster's virtual-time units).
    """

    name: str
    start: float
    end: float | None
    pid: int
    attrs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def is_span(self) -> bool:
        return self.end is not None

    @property
    def category(self) -> str:
        return self.name.split(".", 1)[0]


class NullTracer:
    """The zero-cost default: disabled, allocation-free, stateless.

    Subclassing this is the tracer interface; the runtime only ever calls
    :meth:`event` and :meth:`span` (guarded by :attr:`enabled` wherever
    argument construction would allocate).
    """

    __slots__ = ()

    enabled = False

    def event(self, name: str, ts: float, pid: int = CLUSTER_TRACK,
              attrs: Mapping[str, Any] | None = None) -> None:
        """Record an instant at virtual time ``ts`` (no-op here)."""
        return None

    def span(self, name: str, start: float, end: float, pid: int = CLUSTER_TRACK,
             attrs: Mapping[str, Any] | None = None) -> None:
        """Record a closed interval of virtual time (no-op here)."""
        return None

    def records(self) -> list[TraceRecord]:
        return []

    def counts(self) -> dict[str, int]:
        return {}


#: Shared process-wide no-op instance (it has no state to share).
NULL_TRACER = NullTracer()

_EMPTY_ATTRS: Mapping[str, Any] = {}


class SimTracer(NullTracer):
    """In-memory recording tracer for the simulated world."""

    __slots__ = ("_records",)

    enabled = True

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def event(self, name: str, ts: float, pid: int = CLUSTER_TRACK,
              attrs: Mapping[str, Any] | None = None) -> None:
        self._records.append(
            TraceRecord(name, ts, None, pid, attrs if attrs is not None else _EMPTY_ATTRS)
        )

    def span(self, name: str, start: float, end: float, pid: int = CLUSTER_TRACK,
             attrs: Mapping[str, Any] | None = None) -> None:
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts: {start} > {end}")
        self._records.append(
            TraceRecord(name, start, end, pid, attrs if attrs is not None else _EMPTY_ATTRS)
        )

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[TraceRecord]:
        return list(self._records)

    def iter_records(self, name: str | None = None) -> Iterator[TraceRecord]:
        for record in self._records:
            if name is None or record.name == name:
                yield record

    def counts(self) -> dict[str, int]:
        """``record name -> occurrences`` (report cross-check surface)."""
        out: dict[str, int] = {}
        for record in self._records:
            out[record.name] = out.get(record.name, 0) + 1
        return out


# -- Chrome trace-event export (Perfetto-loadable) -----------------------------


def to_chrome_trace(
    tracer: NullTracer,
    *,
    time_scale: float = 1_000_000.0,
    time_origin: float = 0.0,
    trace_name: str = "repro simulated run",
    clock: str = "virtual",
) -> dict[str, Any]:
    """Fold a tracer's records into the Chrome trace-event JSON format.

    One Perfetto "process" per replica pid (plus a ``cluster`` track for
    events with no owning replica).  ``time_scale`` maps virtual-time
    units to microseconds — the default renders one virtual unit as one
    second, which keeps typical simulated runs readable in the UI.
    ``time_origin`` is subtracted from every timestamp before scaling
    (wall-clock tracers pass their epoch origin so documents start near
    zero — see :func:`repro.obs.wall.wall_chrome_trace`); ``clock``
    labels the document's timebase in ``otherData``.
    """
    records = tracer.records()
    events: list[dict[str, Any]] = []
    pids = sorted({r.pid for r in records})
    for pid in pids:
        label = "cluster" if pid == CLUSTER_TRACK else f"replica {pid}"
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    for record in sorted(records, key=lambda r: r.start):
        entry: dict[str, Any] = {
            "name": record.name,
            "cat": record.category,
            "pid": record.pid,
            "tid": 0,
            "ts": (record.start - time_origin) * time_scale,
            "args": dict(record.attrs),
        }
        if record.end is None:
            entry["ph"] = "i"
            entry["s"] = "p"  # process-scoped instant
        else:
            entry["ph"] = "X"
            entry["dur"] = (record.end - record.start) * time_scale
        events.append(entry)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": clock, "name": trace_name},
    }


def chrome_trace_json(tracer: NullTracer, *, indent: int | None = None,
                      time_scale: float = 1_000_000.0) -> str:
    return json.dumps(to_chrome_trace(tracer, time_scale=time_scale), indent=indent)


def write_chrome_trace(fh_or_path: TextIO | str, tracer: NullTracer,
                       *, time_scale: float = 1_000_000.0) -> None:
    """Write a Perfetto-loadable trace file."""
    doc = to_chrome_trace(tracer, time_scale=time_scale)
    if hasattr(fh_or_path, "write"):
        json.dump(doc, fh_or_path)  # type: ignore[arg-type]
    else:
        with open(fh_or_path, "w") as fh:  # type: ignore[arg-type]
            json.dump(doc, fh)
