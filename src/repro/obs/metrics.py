"""The metrics registry: counters, gauges and histograms with labeled series.

The runtime used to account for itself through ad-hoc attributes
(``Cluster.dropped_to_crashed``, ``Network.sent_count``,
``UniversalReplica.replayed_updates``, ...).  Those quantities are exactly
the paper's Section VII-C complexity claims — one broadcast per update,
query replay cost, log growth — so they deserve a first-class telemetry
surface.  This module provides it:

* :class:`MetricsRegistry` — a named collection of instruments.  Every
  instrument supports *labeled series* (e.g. ``repro_replayed_updates_total``
  keyed by ``pid``), registered idempotently so independent components can
  share one registry.
* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — the three
  Prometheus-style instrument kinds.  Handles returned by
  :meth:`Counter.labels` are plain attribute-bearing objects, cheap enough
  for simulator hot paths (one bound-method call per increment).
* Exposition in both Prometheus text format
  (:meth:`MetricsRegistry.to_prometheus_text`) and a JSON document
  (:meth:`MetricsRegistry.to_json`) consumed by the run-report layer and
  ``benchmarks/run_all.py``'s ``BENCH_universal.json``.

Determinism: instruments never read a clock or draw randomness — every
recorded value is handed in by the caller, stamped with the cluster's
*virtual* time where time matters at all.  Exposition output is sorted, so
two runs of the same seed produce byte-identical dumps.
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from typing import Any, Iterator, Mapping, Sequence

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, in virtual-time units / replayed-update counts.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)

JsonDict = dict[str, Any]


class CounterSeries:
    """One labeled counter series: a monotone number with an ``inc``."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: tuple[str, ...]) -> None:
        self.labels = labels
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount


class GaugeSeries:
    """One labeled gauge series: a settable number."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: tuple[str, ...]) -> None:
        self.labels = labels
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount


class HistogramSeries:
    """One labeled histogram series: bucketed counts plus sum/count."""

    __slots__ = ("labels", "uppers", "bucket_counts", "sum", "count")

    def __init__(self, labels: tuple[str, ...], uppers: tuple[float, ...]) -> None:
        self.labels = labels
        self.uppers = uppers
        #: per-bucket (non-cumulative) counts; the final slot is +Inf.
        self.bucket_counts = [0] * (len(uppers) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: int | float) -> None:
        self.bucket_counts[bisect_left(self.uppers, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``+Inf``."""
        out: list[tuple[float, int]] = []
        running = 0
        for upper, c in zip(self.uppers, self.bucket_counts):
            running += c
            out.append((upper, running))
        out.append((float("inf"), self.count))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile of this series (0.0 when empty)."""
        return bucket_quantile(self.uppers, self.bucket_counts, q)


class _Metric:
    """Shared machinery: a named family of labeled series."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.label_names = label_names
        self._series: dict[tuple[str, ...], Any] = {}
        if not label_names:
            # Unlabeled metrics expose their single series directly.
            self._series[()] = self._make_series(())

    def _make_series(self, values: tuple[str, ...]) -> Any:
        raise NotImplementedError

    def labels(self, **labels: str) -> Any:
        """The series for one label assignment (created on first use)."""
        try:
            values = tuple(str(labels[name]) for name in self.label_names)
        except KeyError as exc:
            raise ValueError(
                f"metric {self.name!r} requires labels {self.label_names}, "
                f"got {sorted(labels)}"
            ) from exc
        if len(labels) != len(self.label_names):
            raise ValueError(
                f"metric {self.name!r} requires labels {self.label_names}, "
                f"got {sorted(labels)}"
            )
        series = self._series.get(values)
        if series is None:
            series = self._series[values] = self._make_series(values)
        return series

    def series(self) -> list[Any]:
        """Every series, sorted by label values (deterministic)."""
        return [self._series[k] for k in sorted(self._series)]

    def _default(self) -> Any:
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} is labeled by {self.label_names}; "
                f"use .labels(...) to pick a series"
            )
        return self._series[()]


class Counter(_Metric):
    """A monotonically increasing count (``*_total`` by convention)."""

    kind = "counter"

    def _make_series(self, values: tuple[str, ...]) -> CounterSeries:
        return CounterSeries(values)

    def inc(self, amount: int | float = 1) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> int | float:
        return self._default().value

    def total(self) -> int | float:
        """Sum over every labeled series."""
        return sum(s.value for s in self._series.values())


class Gauge(_Metric):
    """A value that can go up and down (set to current state on demand)."""

    kind = "gauge"

    def _make_series(self, values: tuple[str, ...]) -> GaugeSeries:
        return GaugeSeries(values)

    def set(self, value: int | float) -> None:
        self._default().set(value)

    def inc(self, amount: int | float = 1) -> None:
        self._default().inc(amount)

    def dec(self, amount: int | float = 1) -> None:
        self._default().dec(amount)

    @property
    def value(self) -> int | float:
        return self._default().value

    def total(self) -> int | float:
        return sum(s.value for s in self._series.values())


class Histogram(_Metric):
    """A distribution, recorded into fixed buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        uppers = tuple(float(b) for b in buckets)
        if not uppers or list(uppers) != sorted(set(uppers)):
            raise ValueError(f"buckets must be distinct and ascending: {buckets}")
        self.uppers = uppers
        super().__init__(name, help, label_names)

    def _make_series(self, values: tuple[str, ...]) -> HistogramSeries:
        return HistogramSeries(values, self.uppers)

    def observe(self, value: int | float) -> None:
        self._default().observe(value)

    def total_count(self) -> int:
        return sum(s.count for s in self._series.values())

    def total_sum(self) -> float:
        return sum(s.sum for s in self._series.values())

    def combined_buckets(self) -> list[int]:
        """Per-bucket (non-cumulative) counts summed over every series.

        The soak harness diffs two of these snapshots to compute a
        *windowed* quantile (e.g. convergence-lag p99 for the last
        second) without the histogram having to remember raw samples.
        """
        totals = [0] * (len(self.uppers) + 1)
        for series in self._series.values():
            for i, c in enumerate(series.bucket_counts):
                totals[i] += c
        return totals

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile over all series combined."""
        return bucket_quantile(self.uppers, self.combined_buckets(), q)


class MetricsRegistry:
    """A named collection of instruments with dual exposition.

    Registration is idempotent: asking for an existing name returns the
    existing instrument, provided kind and label names match (a mismatch
    is a programming error and raises).  This is what lets the cluster,
    the network and every replica share one registry without coordination.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    # -- registration ---------------------------------------------------------

    def _register(self, cls: type, name: str, help: str,
                  label_names: Sequence[str], **kwargs: Any) -> Any:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        names = tuple(label_names)
        for label in names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on {name!r}")
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.label_names != names:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.label_names}"
                )
            return existing
        metric = cls(name, help, names, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                label_names: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, label_names)

    def gauge(self, name: str, help: str = "",
              label_names: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, label_names)

    def histogram(self, name: str, help: str = "",
                  label_names: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, label_names, buckets=buckets)

    # -- reading --------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def value(self, name: str, default: int | float = 0,
              **labels: str) -> int | float:
        """The value of one counter/gauge series; ``default`` if absent."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if labels:
            values = tuple(str(labels[n]) for n in metric.label_names)
            series = metric._series.get(values)
            return default if series is None else series.value
        if metric.label_names:
            return metric.total()
        return metric.value  # type: ignore[union-attr]

    def total(self, name: str, default: int | float = 0) -> int | float:
        """Sum of a counter/gauge across all its series."""
        metric = self._metrics.get(name)
        return default if metric is None else metric.total()  # type: ignore[union-attr]

    def labeled_values(self, name: str) -> dict[tuple[str, ...], int | float]:
        """``label-values -> value`` for every series of a counter/gauge."""
        metric = self._metrics.get(name)
        if metric is None:
            return {}
        return {s.labels: s.value for s in metric.series()}

    # -- exposition -----------------------------------------------------------

    def flat(self) -> dict[str, int | float]:
        """A flat ``name{label="v"} -> value`` dict (benchmark artifacts).

        Histograms are flattened to ``name_count`` and ``name_sum``.
        """
        out: dict[str, int | float] = {}
        for name in self.names():
            metric = self._metrics[name]
            for series in metric.series():
                key = name + _render_labels(metric.label_names, series.labels)
                if isinstance(series, HistogramSeries):
                    out[key + "_count"] = series.count
                    out[key + "_sum"] = series.sum
                else:
                    out[key] = series.value
        return out

    def to_json(self) -> JsonDict:
        """A machine-readable dump of every instrument and series."""
        metrics: JsonDict = {}
        for name in self.names():
            metric = self._metrics[name]
            entry: JsonDict = {
                "type": metric.kind,
                "help": metric.help,
                "label_names": list(metric.label_names),
                "series": [],
            }
            for series in metric.series():
                labels = dict(zip(metric.label_names, series.labels))
                if isinstance(series, HistogramSeries):
                    entry["series"].append(
                        {
                            "labels": labels,
                            "count": series.count,
                            "sum": series.sum,
                            "buckets": [
                                ["+Inf" if le == float("inf") else le, c]
                                for le, c in series.cumulative_buckets()
                            ],
                        }
                    )
                else:
                    entry["series"].append({"labels": labels, "value": series.value})
            metrics[name] = entry
        return {"format": "repro-metrics-v1", "metrics": metrics}

    def to_prometheus_text(self) -> str:
        """The Prometheus text exposition format (one block per metric)."""
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for series in metric.series():
                if isinstance(series, HistogramSeries):
                    for le, cum in series.cumulative_buckets():
                        le_txt = "+Inf" if le == float("inf") else _fmt_num(le)
                        labels = _render_labels(
                            metric.label_names + ("le",), series.labels + (le_txt,)
                        )
                        lines.append(f"{name}_bucket{labels} {cum}")
                    base = _render_labels(metric.label_names, series.labels)
                    lines.append(f"{name}_sum{base} {_fmt_num(series.sum)}")
                    lines.append(f"{name}_count{base} {series.count}")
                else:
                    labels = _render_labels(metric.label_names, series.labels)
                    lines.append(f"{name}{labels} {_fmt_num(series.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json_text(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    def iter_samples(self) -> Iterator[tuple[str, Mapping[str, str], int | float]]:
        """Flat ``(name, labels, value)`` samples for counters and gauges."""
        for name in self.names():
            metric = self._metrics[name]
            for series in metric.series():
                if isinstance(series, HistogramSeries):
                    continue
                yield name, dict(zip(metric.label_names, series.labels)), series.value


def bucket_quantile(
    uppers: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Prometheus-style quantile estimate from bucketed counts.

    ``counts`` are per-bucket (non-cumulative) observation counts, one
    slot per ``uppers`` entry plus a trailing ``+Inf`` slot — exactly
    :attr:`HistogramSeries.bucket_counts` (so a *windowed* quantile is
    just ``bucket_quantile(uppers, [b - a for a, b in zip(old, new)], q)``
    over two snapshots).  Linear interpolation inside the target bucket,
    the standard ``histogram_quantile`` behaviour: observations landing
    in the ``+Inf`` bucket clamp to the highest finite bound, and an
    empty window returns 0.0.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be within [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    running = 0.0
    for i, upper in enumerate(uppers):
        prev = running
        running += counts[i]
        if running >= rank:
            lower = uppers[i - 1] if i > 0 else 0.0
            if counts[i] == 0:
                return upper
            return lower + (upper - lower) * ((rank - prev) / counts[i])
    return uppers[-1] if uppers else 0.0


def _render_labels(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_num(value: int | float) -> str:
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
