"""cProfile hooks for the benchmark harnesses (``--profile``).

The ROADMAP's next raw-speed item is a *profiled* sim-scheduler rewrite;
this module gives ``benchmarks/run_all.py`` and
``benchmarks/bench_throughput.py`` a shared ``--profile`` implementation
so the profiles that motivate that rewrite are one flag away and land in
two formats:

* ``<prefix>.pstats`` — the raw :mod:`pstats` dump, for
  ``python -m pstats`` / snakeviz-style explorers;
* ``<prefix>.collapsed`` — collapsed-stack lines (``caller;callee
  microseconds``), the input format of Brendan Gregg's ``flamegraph.pl``
  and of every web flamegraph viewer that accepts it (e.g. speedscope).

cProfile records caller/callee *pairs*, not full call stacks, so the
collapsed output is a two-level approximation: each line charges a
callee's per-edge cumulative time to its immediate caller.  That is
exactly the granularity needed to rank inner-loop suspects (the
checkpoint replay fold, the event-queue pop, the frame codec) even
though deep flame towers collapse to two frames.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from typing import Iterator


def _frame_name(func: tuple[str, int, str]) -> str:
    """``file:line(function)`` with path noise trimmed, semicolons safe."""
    filename, lineno, name = func
    if filename == "~":  # builtins have no file
        return name.replace(";", ",")
    short = "/".join(filename.replace("\\", "/").split("/")[-2:])
    return f"{short}:{lineno}:{name}".replace(";", ",")


def collapsed_stacks(stats: pstats.Stats) -> str:
    """Render profiler stats as flamegraph-compatible collapsed lines.

    Root functions (no recorded caller) are charged their own total
    time; every caller→callee edge is charged the cumulative time
    cProfile attributes to that edge, in integer microseconds (zero-cost
    edges are dropped — flamegraph.pl ignores zero-weight lines anyway).
    Output is sorted, so two runs of the same profile diff cleanly.
    """
    lines: list[str] = []
    for func, (_cc, _nc, tt, _ct, callers) in stats.stats.items():  # type: ignore[attr-defined]
        name = _frame_name(func)
        if not callers:
            weight = int(tt * 1e6)
            if weight > 0:
                lines.append(f"{name} {weight}")
            continue
        for caller, (_cc2, _nc2, _tt2, ct2) in callers.items():
            weight = int(ct2 * 1e6)
            if weight > 0:
                lines.append(f"{_frame_name(caller)};{name} {weight}")
    return "\n".join(sorted(lines)) + ("\n" if lines else "")


def write_profile(profile: cProfile.Profile, prefix: str) -> tuple[str, str]:
    """Write ``<prefix>.pstats`` + ``<prefix>.collapsed``; return paths."""
    pstats_path = f"{prefix}.pstats"
    collapsed_path = f"{prefix}.collapsed"
    profile.dump_stats(pstats_path)
    stats = pstats.Stats(profile)
    with open(collapsed_path, "w") as fh:
        fh.write(collapsed_stacks(stats))
    return pstats_path, collapsed_path


@contextmanager
def profiled(prefix: str | None) -> Iterator[cProfile.Profile | None]:
    """Profile the enclosed block when ``prefix`` is set; no-op otherwise.

    The ``None`` fast path keeps call sites branch-free::

        with profiled(args.profile):
            run_everything()
    """
    if prefix is None:
        yield None
        return
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield profile
    finally:
        profile.disable()
        pstats_path, collapsed_path = write_profile(profile, prefix)
        print(f"[profile: {pstats_path} + {collapsed_path} (flamegraph-compatible)]")
