"""Wall-clock tracing for the networked backend, Perfetto-exportable.

:mod:`repro.obs.tracer` deliberately speaks only *virtual* time — a trace
of a seeded simulator run is a pure function of the seed.  The asyncio
backend (:mod:`repro.net`) has no virtual clock: frames cross real
sockets, timers fire on the event loop, and the only meaningful
timestamps are wall-clock ones.  This module is the real-time twin:

* :class:`WallTracer` — a :class:`~repro.obs.tracer.SimTracer` whose
  records are stamped with epoch seconds by its callers (via
  :func:`wall_now`); it shares :class:`~repro.obs.tracer.TraceRecord`
  and the Chrome/Perfetto export with the sim tracer, so the same
  tooling reads both.
* :class:`TraceContext` — the propagated per-update context: a trace id
  minted at the HTTP front-end plus the submit wall time.  It rides the
  peer frames as a header field (see :mod:`repro.net.framing`), which is
  what links one client update's spans — HTTP parse, local apply, peer
  broadcast, remote applies, visibility — into a single causal tree
  across every node that sees the update.
* :func:`wall_chrome_trace` / :func:`merge_chrome_traces` — export one
  node's trace, then merge many nodes' exports into one timeline.  Each
  export remembers its epoch origin in ``otherData`` so the merge can
  re-align documents produced by tracers born at different instants (or
  in different processes).

Clock semantics: trace timestamps and convergence-lag arithmetic use
:func:`wall_now` (``time.time``), the one clock comparable *across*
processes (to NTP accuracy on multi-host meshes; exact on localhost).
Same-process durations (RTT echoes, flush latency) use
``time.monotonic`` at their call sites instead.

This module is a sanctioned wall-clock domain for uqlint (SIM101/SIM105
do not apply here — see ``WALL_CLOCK_DOMAINS`` in
:mod:`repro.lint.determinism`); the simulated world must never import it.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, NamedTuple

from repro.obs.tracer import SimTracer, to_chrome_trace

#: The sanctioned wall clock of the net path: epoch seconds, comparable
#: across processes.  Held as a reference so tests can monkeypatch one
#: name and freeze every trace/lag computation at once.
wall_now = time.time


class TraceContext(NamedTuple):
    """The per-update context propagated through peer frames.

    ``trace_id`` is minted at the HTTP front-end (or supplied by the
    client as ``X-Trace-Id``); ``t0`` is the submit wall time stamped at
    the front-end, the zero point every replica's convergence lag is
    measured from.
    """

    trace_id: str
    t0: float

    def as_wire(self) -> list[Any]:
        """The JSON-friendly header encoding (see ``proto.wire``)."""
        return [self.trace_id, self.t0]


class WallTracer(SimTracer):
    """In-memory recording tracer for the real-time (net) world.

    Identical record/export machinery to :class:`SimTracer`; the only
    additions are :meth:`now` (so instrumented sites never import
    ``time`` themselves) and the epoch origin used to re-align merged
    multi-node timelines.
    """

    __slots__ = ("epoch0",)

    #: Consumed by the Chrome-trace export and by the lint scoping: this
    #: tracer's timestamps are epoch seconds, not virtual time.
    clock_domain = "wall"

    def __init__(self) -> None:
        super().__init__()
        self.epoch0 = wall_now()

    def now(self) -> float:
        """Current wall time (epoch seconds) — what callers stamp with."""
        return wall_now()


def wall_chrome_trace(
    tracer: WallTracer, *, trace_name: str = "repro net run"
) -> dict[str, Any]:
    """One node's records as a Chrome trace-event document.

    Timestamps are rebased to the tracer's ``epoch0`` (so a lone document
    starts near zero) and the origin is recorded in ``otherData`` for
    :func:`merge_chrome_traces` to undo.
    """
    doc = to_chrome_trace(
        tracer,
        time_scale=1e6,
        time_origin=tracer.epoch0,
        trace_name=trace_name,
        clock="wall",
    )
    doc["otherData"]["epoch_origin"] = tracer.epoch0
    return doc


def merge_chrome_traces(docs: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Fold per-node Chrome trace documents into one Perfetto timeline.

    Every document's events are shifted onto the earliest epoch origin
    among the inputs, process-name metadata is deduplicated by pid (the
    pre- and post-restart tracer of one node both describe the same
    track), and the result sorts by timestamp — one file, one timeline,
    every node's spans on its own track.
    """
    docs = list(docs)
    origins = [
        float(doc.get("otherData", {}).get("epoch_origin", 0.0)) for doc in docs
    ]
    base = min(origins, default=0.0)
    metas: dict[tuple[int, str], dict[str, Any]] = {}
    events: list[dict[str, Any]] = []
    for doc, origin in zip(docs, origins):
        shift = (origin - base) * 1e6
        for entry in doc.get("traceEvents", []):
            if entry.get("ph") == "M":
                metas.setdefault((entry["pid"], entry["name"]), entry)
            else:
                moved = dict(entry)
                moved["ts"] = moved.get("ts", 0.0) + shift
                events.append(moved)
    events.sort(key=lambda e: e["ts"])
    return {
        "traceEvents": [metas[k] for k in sorted(metas)] + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "wall",
            "epoch_origin": base,
            "merged_documents": len(docs),
            "name": "repro net merged trace",
        },
    }


def trace_ids(doc: dict[str, Any]) -> dict[str, list[dict[str, Any]]]:
    """Group a (merged) trace document's events by their ``trace`` attr.

    The cross-node assertion surface: one client update must land every
    one of its spans — front-end, local apply, remote applies,
    visibility — under a single trace id, whichever node emitted them.
    Events without a ``trace`` attr (RTT pings, flushes) are skipped.
    """
    groups: dict[str, list[dict[str, Any]]] = {}
    for entry in doc.get("traceEvents", []):
        if entry.get("ph") == "M":
            continue
        trace = entry.get("args", {}).get("trace")
        if trace is not None:
            groups.setdefault(str(trace), []).append(entry)
    return groups
