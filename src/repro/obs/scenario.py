"""The canonical traced chaos scenario: crash + recover + anti-entropy
under a lossy network.

One seeded, fully deterministic run exercising every instrumented code
path — update/query traffic across all replicas, a mid-run crash that
loses the victim's in-flight broadcasts, a recovery from a truncated
durable log (the crash beat the last fsync), and the anti-entropy repair
rounds that restore agreement despite message loss.  Used three ways:

* ``python -m repro.obs report`` renders its run report (the CLI);
* the CI ``obs-smoke`` job validates that report against the schema and
  uploads it with the Perfetto trace;
* ``tests/obs/test_report.py`` cross-checks every reported number against
  the cluster and trace it came from.
"""

from __future__ import annotations

import numpy as np

from repro.core.universal import UniversalReplica
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, SimTracer
from repro.sim.cluster import Cluster
from repro.sim.network import LossyNetwork
from repro.specs import SetSpec
from repro.specs import set_spec as S


def chaos_scenario(
    *,
    seed: int = 0,
    procs: int = 3,
    ops: int = 40,
    drop_probability: float = 0.15,
    anti_entropy_rounds: int = 8,
    tracer: NullTracer | None = None,
    registry: MetricsRegistry | None = None,
) -> Cluster:
    """Run the scenario; returns the finished (quiescent) cluster.

    Tracing is on by default (a fresh :class:`SimTracer`); pass
    ``tracer=NULL_TRACER`` to measure the untraced hot path instead.  The
    run is a pure function of ``seed`` — same seed, same trace, same
    metrics, byte-identical report.
    """
    spec = SetSpec()
    cluster = Cluster(
        procs,
        lambda p, n: UniversalReplica(p, n, spec, relay=True),
        seed=seed,
        network_cls=LossyNetwork,
        network_kwargs={"drop_probability": drop_probability},
        registry=registry if registry is not None else MetricsRegistry(),
        tracer=tracer if tracer is not None else SimTracer(),
    )
    rng = np.random.default_rng(seed)
    victim = int(rng.integers(procs))
    crash_at = ops // 3
    recover_at = (2 * ops) // 3
    for i in range(ops):
        if i == crash_at:
            cluster.crash(victim, drop_outgoing=True)
        elif i == recover_at:
            log = getattr(cluster.replicas[victim], "updates", ())
            # Half the log survived the fsync race; anti-entropy refetches.
            fsync_point = len(log) // 2 if log else None
            cluster.recover(victim, fsync_point=fsync_point)
        pid = int(rng.integers(procs))
        value = int(rng.integers(8))
        op = S.insert(value) if rng.random() < 0.7 else S.delete(value)
        if pid in cluster.crashed:
            continue
        cluster.update(pid, op)
        if rng.random() < 0.3:
            target = int(rng.choice(cluster.alive()))
            cluster.query(target, "read")
    cluster.run()
    cluster.anti_entropy(rounds=anti_entropy_rounds)
    for pid in cluster.alive():
        cluster.query(pid, "read")
    return cluster
