"""Structured JSON logging with trace-id correlation (``repro.obs.log``).

The networked backend used to log through ad-hoc
``logging.getLogger(...).error("node %d ... %r", ...)`` calls — fine for
a terminal, useless for correlating one update's journey across three
replica processes.  This module replaces them with one-line JSON events:

    {"ts": 1754700000.123456, "level": "error", "logger": "repro.net.node",
     "event": "task_crashed", "pid": 2, "error": "RuntimeError('boom')",
     "trace": "t0-2f"}

* :func:`get_logger` returns a :class:`StructLogger` — a thin wrapper
  over the stdlib logger of the same name, so level configuration,
  handler routing and capture in tests all keep working.
* :meth:`StructLogger.bind` attaches contextual fields (``pid``, and the
  propagated ``trace`` id wherever one is in scope) to every subsequent
  event; binding returns a new logger, so handlers can be shared freely.
* :func:`configure` installs a message-only stream handler on the
  ``repro`` root, for CLIs that want the JSON lines on stderr verbatim.

Events are plain ``dict -> json.dumps`` with ``sort_keys`` (stable field
order for log diffing) and ``default=repr`` (an exception object in a
field never kills the log call).  The ``ts`` field is epoch seconds from
:func:`repro.obs.wall.wall_now` — this module is part of the sanctioned
wall-clock domain (see ``WALL_CLOCK_DOMAINS`` in
:mod:`repro.lint.determinism`); simulator code must keep using the
virtual-time tracer instead.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, Mapping, TextIO

from repro.obs.wall import wall_now

_LEVELS = {
    logging.DEBUG: "debug",
    logging.INFO: "info",
    logging.WARNING: "warning",
    logging.ERROR: "error",
}


class StructLogger:
    """A stdlib logger wrapper emitting one JSON object per event."""

    __slots__ = ("_logger", "_fields")

    def __init__(
        self, name_or_logger: str | logging.Logger, fields: Mapping[str, Any] | None = None
    ) -> None:
        self._logger = (
            logging.getLogger(name_or_logger)
            if isinstance(name_or_logger, str)
            else name_or_logger
        )
        self._fields: dict[str, Any] = dict(fields or {})

    @property
    def name(self) -> str:
        return self._logger.name

    def bind(self, **fields: Any) -> "StructLogger":
        """A new logger with ``fields`` merged into every future event."""
        return StructLogger(self._logger, {**self._fields, **fields})

    def log(self, level: int, event: str, **fields: Any) -> None:
        if not self._logger.isEnabledFor(level):
            return
        doc: dict[str, Any] = {
            "ts": round(wall_now(), 6),
            "level": _LEVELS.get(level, logging.getLevelName(level).lower()),
            "logger": self._logger.name,
            "event": event,
        }
        doc.update(self._fields)
        doc.update(fields)
        self._logger.log(level, json.dumps(doc, sort_keys=True, default=repr))

    def debug(self, event: str, **fields: Any) -> None:
        self.log(logging.DEBUG, event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log(logging.INFO, event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log(logging.WARNING, event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log(logging.ERROR, event, **fields)


def get_logger(name: str, **fields: Any) -> StructLogger:
    """The structured logger for ``name``, with optional bound fields."""
    return StructLogger(name, fields)


def configure(
    level: int | str = logging.INFO, stream: TextIO | None = None
) -> logging.Handler:
    """Route ``repro.*`` structured events to ``stream`` (default stderr).

    The handler's format is the bare message — each event is already a
    complete JSON document, so any prefix would just break ``jq``.
    Idempotent per stream: calling twice replaces the previous handler
    installed here rather than duplicating output lines.
    """
    root = logging.getLogger("repro")
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    handler.set_name("repro-obs-json")
    for existing in list(root.handlers):
        if existing.get_name() == handler.get_name():
            root.removeHandler(existing)
    root.addHandler(handler)
    root.setLevel(level)
    return handler
