"""Machine-readable run reports: one JSON document per simulated run.

Folds the cluster's trace, metrics registry and (optional) tracer into a
single ``repro-run-report-v1`` document answering the questions the paper's
Section VII-C raises empirically: did the run converge and when
(``analysis.convergence``), how stale were reads (``analysis.staleness``),
how many messages did agreement cost (``analysis.metrics``), and how much
replay work did queries amortize.  The schema is documented in
``docs/observability.md`` and enforced here by :func:`validate_report` —
hand-rolled, since the toolchain does not ship a JSON-Schema validator.

Not imported from ``repro.obs.__init__``: this module imports the cluster,
which itself imports :mod:`repro.obs.metrics` at load time, so pulling it
into the package root would create an import cycle.  Import it explicitly::

    from repro.obs.report import run_report
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any

from repro.analysis.convergence import (
    ConvergenceWatchdog,
    converged,
    divergence_degree,
    log_divergence,
)
from repro.analysis.metrics import collect_message_stats
from repro.analysis.staleness import staleness_report
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer
from repro.sim.cluster import Cluster

REPORT_FORMAT = "repro-run-report-v1"
#: The networked-backend report document emitted by the load harness
#: (``benchmarks/load_harness.py``, incl. ``--soak``); validated by
#: :func:`validate_net_report`.
NET_REPORT_FORMAT = "repro-net-report-v1"

JsonDict = dict[str, Any]


def run_report(
    cluster: Cluster,
    *,
    tracer: NullTracer | None = None,
    registry: MetricsRegistry | None = None,
    drive: bool = True,
) -> JsonDict:
    """Build the run-report document for a (finished) cluster run.

    With ``drive=True`` (default) any still-deliverable traffic is drained
    through :class:`~repro.analysis.convergence.ConvergenceWatchdog`, which
    also measures time-to-agreement; on an already-quiescent cluster that
    is a no-op.  ``drive=False`` snapshots the cluster untouched.
    ``tracer``/``registry`` default to the cluster's own.
    """
    tracer = tracer if tracer is not None else cluster.tracer
    registry = registry if registry is not None else cluster.metrics

    if drive:
        conv = asdict(ConvergenceWatchdog(cluster).watch())
    else:
        is_conv = converged(cluster)
        conv = {
            "converged": is_conv,
            "quiescent": cluster.quiescent(),
            "steps": 0,
            "time_to_agreement": cluster.now if is_conv else None,
            "final_divergence": log_divergence(cluster),
            "distinct_states": divergence_degree(cluster),
            "undelivered": cluster.network.pending_count(),
        }
    conv["final_divergence"] = {
        str(pid): lag for pid, lag in sorted(conv["final_divergence"].items())
    }

    try:
        stale: JsonDict | None = asdict(staleness_report(cluster.trace))
    except ValueError:
        # Replicas without witness metadata (track_witness=False) cannot
        # be scored for staleness; the section is null rather than absent.
        stale = None

    stats = collect_message_stats(cluster)
    messages = {
        "sent": stats.messages_sent,
        "delivered": stats.messages_delivered,
        "lost": int(getattr(cluster.network, "lost_count", 0)),
        "duplicated": int(getattr(cluster.network, "duplicated_count", 0)),
        "dropped_to_crashed": cluster.dropped_to_crashed,
        "pending": cluster.network.pending_count(),
        "sends_per_update": stats.sends_per_update,
        "broadcast_optimal": stats.broadcast_optimal(),
        "max_timestamp_bits": stats.max_timestamp_bits,
    }

    replicas = []
    for pid in range(cluster.n):
        replica = cluster.replicas[pid]
        replicas.append(
            {
                "pid": pid,
                "crashed": pid in cluster.crashed,
                "replayed_updates": int(getattr(replica, "replayed_updates", 0)),
                "log_length": int(getattr(replica, "log_length", 0)),
                "rollbacks": int(getattr(replica, "rollbacks", 0)),
                "collected": int(getattr(replica, "collected", 0)),
            }
        )

    # Anti-entropy v2 accounting (all counters default to 0 when no sync
    # traffic — or no sync-capable replica — occurred in the run).
    sync = {
        "requests": int(registry.total("repro_sync_requests_total")),
        "request_bits": int(registry.total("repro_sync_request_bits_total")),
        "pages": int(registry.total("repro_sync_pages_sent_total")),
        "updates_shipped": int(
            registry.total("repro_sync_updates_shipped_total")
        ),
        "redundant_updates": int(
            registry.total("repro_sync_redundant_updates_total")
        ),
        "state_transfers": int(
            registry.total("repro_sync_state_transfers_total")
        ),
        "state_installs": int(
            registry.total("repro_sync_state_installs_total")
        ),
    }

    updates = len(cluster.trace.updates())
    queries = len(cluster.trace.queries())
    total_replayed = int(registry.total("repro_replica_replayed_updates_total"))
    replay = {
        "updates": updates,
        "queries": queries,
        "total_replayed": total_replayed,
        # Replay amplification: how many update-folds the run paid per
        # query (the naive construction pays the whole log each time).
        "replayed_per_query": total_replayed / queries if queries else 0.0,
    }

    return {
        "format": REPORT_FORMAT,
        "cluster": {
            "processes": cluster.n,
            "virtual_time": cluster.now,
            "alive": cluster.alive(),
            "crashed": sorted(cluster.crashed),
            "recoveries": cluster.recovered_count,
        },
        "convergence": conv,
        "staleness": stale,
        "messages": messages,
        "sync": sync,
        "replay": replay,
        "replicas": replicas,
        "trace": {
            "enabled": tracer.enabled,
            "records": len(tracer.records()),
            "events": tracer.counts(),
        },
        "metrics": registry.to_json(),
    }


def report_json(doc: JsonDict, *, indent: int | None = 2) -> str:
    return json.dumps(doc, indent=indent, sort_keys=True)


def write_report(path: str, doc: JsonDict) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


# -- schema validation ---------------------------------------------------------

#: Required dotted paths and their accepted types.  ``float`` accepts ints
#: too (JSON round-trips whole floats as ints); ``None`` in a tuple marks
#: a nullable field.
_REQUIRED: dict[str, tuple[Any, ...]] = {
    "format": (str,),
    "cluster": (dict,),
    "cluster.processes": (int,),
    "cluster.virtual_time": (float,),
    "cluster.alive": (list,),
    "cluster.crashed": (list,),
    "cluster.recoveries": (int,),
    "convergence": (dict,),
    "convergence.converged": (bool,),
    "convergence.quiescent": (bool,),
    "convergence.steps": (int,),
    "convergence.time_to_agreement": (float, None),
    "convergence.final_divergence": (dict,),
    "convergence.distinct_states": (int,),
    "convergence.undelivered": (int,),
    "staleness": (dict, None),
    "messages": (dict,),
    "messages.sent": (int,),
    "messages.delivered": (int,),
    "messages.lost": (int,),
    "messages.duplicated": (int,),
    "messages.dropped_to_crashed": (int,),
    "messages.pending": (int,),
    "messages.sends_per_update": (float,),
    "messages.broadcast_optimal": (bool,),
    "messages.max_timestamp_bits": (int,),
    "sync": (dict,),
    "sync.requests": (int,),
    "sync.request_bits": (int,),
    "sync.pages": (int,),
    "sync.updates_shipped": (int,),
    "sync.redundant_updates": (int,),
    "sync.state_transfers": (int,),
    "sync.state_installs": (int,),
    "replay": (dict,),
    "replay.updates": (int,),
    "replay.queries": (int,),
    "replay.total_replayed": (int,),
    "replay.replayed_per_query": (float,),
    "replicas": (list,),
    "trace": (dict,),
    "trace.enabled": (bool,),
    "trace.records": (int,),
    "trace.events": (dict,),
    "metrics": (dict,),
    "metrics.format": (str,),
    "metrics.metrics": (dict,),
}

_REPLICA_FIELDS: dict[str, tuple[Any, ...]] = {
    "pid": (int,),
    "crashed": (bool,),
    "replayed_updates": (int,),
    "log_length": (int,),
    "rollbacks": (int,),
    "collected": (int,),
}


def _type_ok(value: Any, kinds: tuple[Any, ...]) -> bool:
    for kind in kinds:
        if kind is None:
            if value is None:
                return True
        elif kind is bool:
            if isinstance(value, bool):
                return True
        elif kind is int:
            if isinstance(value, int) and not isinstance(value, bool):
                return True
        elif kind is float:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return True
        elif isinstance(value, kind):
            return True
    return False


def _lookup(doc: JsonDict, dotted: str) -> tuple[bool, Any]:
    node: Any = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return False, None
        node = node[part]
    return True, node


#: Required dotted paths of the ``repro-net-report-v1`` document (the
#: wall-clock twin of the run report: emitted by the load harness, with
#: a per-second ``series`` when running in soak mode).
_NET_REQUIRED: dict[str, tuple[Any, ...]] = {
    "format": (str,),
    "kind": (str,),
    "config": (dict,),
    "config.users": (int,),
    "config.replicas": (int,),
    "config.duration_seconds": (float,),
    "config.ramp_seconds": (float,),
    "summary": (dict,),
    "summary.ops": (int,),
    "summary.updates": (int,),
    "summary.queries": (int,),
    "summary.errors": (int,),
    "summary.measured_seconds": (float,),
    "summary.ops_per_sec": (float,),
    "summary.p50_ms": (float,),
    "summary.p99_ms": (float,),
    "summary.max_ms": (float,),
    "summary.convergence_lag_p50_ms": (float,),
    "summary.convergence_lag_p99_ms": (float,),
    "summary.task_errors": (int,),
    "summary.converged": (bool, None),
    "series": (list,),
    "metrics": (dict,),
}

#: Required fields of one per-second ``series`` row.
_NET_SERIES_FIELDS: dict[str, tuple[Any, ...]] = {
    "t": (float,),
    "ops": (int,),
    "ops_per_sec": (float,),
    "p50_ms": (float,),
    "p99_ms": (float,),
    "convergence_lag_p99_ms": (float,),
    "task_errors": (int,),
    "errors": (int,),
}


def validate_net_report(doc: Any) -> list[str]:
    """Check a document against the net-report schema; return the errors
    (empty list = valid).  Structural, like :func:`validate_report`; the
    soak-mode value-level cross-checks live in ``tests/net``."""
    if not isinstance(doc, dict):
        return [f"report must be a JSON object, got {type(doc).__name__}"]
    errors: list[str] = []
    if doc.get("format") != NET_REPORT_FORMAT:
        errors.append(
            f"format must be {NET_REPORT_FORMAT!r}, got {doc.get('format')!r}"
        )
    for dotted, kinds in _NET_REQUIRED.items():
        present, value = _lookup(doc, dotted)
        if not present:
            errors.append(f"missing required field {dotted!r}")
        elif not _type_ok(value, kinds):
            names = "/".join("null" if k is None else k.__name__ for k in kinds)
            errors.append(
                f"field {dotted!r} must be {names}, got {type(value).__name__}"
            )
    for i, row in enumerate(doc.get("series") or []):
        if not isinstance(row, dict):
            errors.append(f"series[{i}] must be an object")
            continue
        for name, kinds in _NET_SERIES_FIELDS.items():
            if name not in row:
                errors.append(f"series[{i}] missing field {name!r}")
            elif not _type_ok(row[name], kinds):
                errors.append(f"series[{i}].{name} has the wrong type")
    return errors


def validate_report(doc: Any) -> list[str]:
    """Check a document against the run-report schema; return the errors
    (empty list = valid).  Deliberately structural, not semantic: value
    cross-checks live in the test suite."""
    if not isinstance(doc, dict):
        return [f"report must be a JSON object, got {type(doc).__name__}"]
    errors: list[str] = []
    if doc.get("format") != REPORT_FORMAT:
        errors.append(
            f"format must be {REPORT_FORMAT!r}, got {doc.get('format')!r}"
        )
    for dotted, kinds in _REQUIRED.items():
        present, value = _lookup(doc, dotted)
        if not present:
            errors.append(f"missing required field {dotted!r}")
        elif not _type_ok(value, kinds):
            names = "/".join("null" if k is None else k.__name__ for k in kinds)
            errors.append(
                f"field {dotted!r} must be {names}, got {type(value).__name__}"
            )
    for i, entry in enumerate(doc.get("replicas") or []):
        if not isinstance(entry, dict):
            errors.append(f"replicas[{i}] must be an object")
            continue
        for name, kinds in _REPLICA_FIELDS.items():
            if name not in entry:
                errors.append(f"replicas[{i}] missing field {name!r}")
            elif not _type_ok(entry[name], kinds):
                errors.append(f"replicas[{i}].{name} has the wrong type")
    return errors
