"""Utility layer: logical clocks, identifier allocation, order helpers.

These are the small, dependency-free building blocks shared by the core
formalism (:mod:`repro.core`), the simulator (:mod:`repro.sim`) and the
replicated object implementations (:mod:`repro.objects`, :mod:`repro.crdt`).
"""

from repro.util.clocks import LamportClock, Timestamp, VectorClock
from repro.util.ids import IdAllocator, fresh_token
from repro.util.ordering import (
    is_acyclic,
    is_total_order,
    relation_closure,
    topological_sorts,
)

__all__ = [
    "LamportClock",
    "Timestamp",
    "VectorClock",
    "IdAllocator",
    "fresh_token",
    "is_acyclic",
    "is_total_order",
    "relation_closure",
    "topological_sorts",
]
