"""Logical clocks and timestamps.

The universal construction (Algorithm 1 of the paper) totally orders updates
with a Lamport clock [Lamport 1978] paired with the issuing process id:
``(clock, pid)`` compared lexicographically.  The pair is a *total* order
because two operations of the same process always carry different clock
values, and it *contains the happened-before relation*: a process receiving a
message raises its clock to at least the sender's value before stamping its
next event.

:class:`VectorClock` is provided for the causal-broadcast baseline used in
the Proposition 1 discussion (causal consistency cannot be combined with
eventual consistency in wait-free systems).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True, order=True)
class Timestamp:
    """A totally ordered Lamport timestamp ``(clock, pid)``.

    Ordering is lexicographic — first by logical clock, ties broken by the
    (unique, totally ordered) process id — exactly the order used to sort
    the update list in Algorithm 1 line 15.
    """

    clock: int
    pid: int

    def __post_init__(self) -> None:
        if self.clock < 0:
            raise ValueError(f"clock must be non-negative, got {self.clock}")
        if self.pid < 0:
            raise ValueError(f"pid must be non-negative, got {self.pid}")

    def encoded_size_bits(self) -> int:
        """Number of bits needed to encode this timestamp.

        Used by the message-complexity bench (Section VII-C claims the
        timestamp grows only logarithmically with the number of operations
        and processes).
        """
        return max(self.clock, 1).bit_length() + max(self.pid, 1).bit_length()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.clock},{self.pid})"


class LamportClock:
    """A per-process Lamport logical clock.

    The clock supports the two transitions used by Algorithm 1:

    * :meth:`tick` — local event (update issued or query issued): increment
      and return the new value (line 5 / line 13).
    * :meth:`merge` — message reception: raise the clock to the max of its
      current value and the received one (line 9).
    """

    __slots__ = ("_pid", "_value")

    def __init__(self, pid: int, initial: int = 0) -> None:
        if pid < 0:
            raise ValueError(f"pid must be non-negative, got {pid}")
        if initial < 0:
            raise ValueError(f"initial clock must be non-negative, got {initial}")
        self._pid = pid
        self._value = initial

    @property
    def pid(self) -> int:
        """The owning process id (ties broken by it in timestamps)."""
        return self._pid

    @property
    def value(self) -> int:
        """Current logical time."""
        return self._value

    def tick(self) -> Timestamp:
        """Advance for a local event and return the fresh timestamp."""
        self._value += 1
        return Timestamp(self._value, self._pid)

    def tick_value(self) -> int:
        """Advance for a local event and return the bare clock integer.

        Hot-path variant of :meth:`tick`: the replicas stamp millions of
        events per run and only need the ``(clock, pid)`` pair they build
        themselves, so the :class:`Timestamp` allocation (plus its
        ``__post_init__`` validation) is pure overhead there.  Semantics
        are identical — ``tick().clock == tick_value()`` step for step.
        """
        self._value += 1
        return self._value

    def merge(self, other: int | Timestamp) -> None:
        """Incorporate a received clock value (message reception rule)."""
        value = other.clock if isinstance(other, Timestamp) else int(other)
        if value < 0:
            raise ValueError(f"received clock must be non-negative, got {value}")
        if value > self._value:
            self._value = value

    def peek(self) -> Timestamp:
        """Current timestamp without advancing (for inspection only)."""
        return Timestamp(self._value, self._pid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LamportClock(pid={self._pid}, value={self._value})"


class VectorClock:
    """A classic vector clock over a fixed process universe ``0..n-1``.

    Supports the partial happened-before order: ``a <= b`` iff every
    component of ``a`` is ``<=`` the corresponding component of ``b``.
    Used by the causal-broadcast baseline.
    """

    __slots__ = ("_vec",)

    def __init__(self, n: int | list[int] | tuple[int, ...]) -> None:
        if isinstance(n, int):
            if n <= 0:
                raise ValueError(f"need at least one process, got {n}")
            self._vec = [0] * n
        else:
            vec = list(n)
            if not vec or any(v < 0 for v in vec):
                raise ValueError(f"invalid vector clock components: {vec}")
            self._vec = vec

    @property
    def size(self) -> int:
        """Number of process components."""
        return len(self._vec)

    def copy(self) -> "VectorClock":
        """An independent copy (mutating it leaves this clock alone)."""
        return VectorClock(self._vec)

    def tick(self, pid: int) -> "VectorClock":
        """Increment ``pid``'s component in place; return self for chaining."""
        self._check_pid(pid)
        self._vec[pid] += 1
        return self

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise max, in place; return self for chaining."""
        self._check_compatible(other)
        for i, v in enumerate(other._vec):
            if v > self._vec[i]:
                self._vec[i] = v
        return self

    def __getitem__(self, pid: int) -> int:
        self._check_pid(pid)
        return self._vec[pid]

    def __iter__(self) -> Iterator[int]:
        return iter(self._vec)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._vec == other._vec

    def __hash__(self) -> int:
        return hash(tuple(self._vec))

    def __le__(self, other: "VectorClock") -> bool:
        self._check_compatible(other)
        return all(a <= b for a, b in zip(self._vec, other._vec))

    def __lt__(self, other: "VectorClock") -> bool:
        return self <= other and self._vec != other._vec

    def concurrent_with(self, other: "VectorClock") -> bool:
        """True iff neither clock happened-before the other."""
        return not (self <= other) and not (other <= self)

    def as_tuple(self) -> tuple[int, ...]:
        """Immutable snapshot of the components (wire format)."""
        return tuple(self._vec)

    def causally_ready(self, sender: int, local: "VectorClock") -> bool:
        """Causal-delivery condition for a message stamped with this clock.

        A message from ``sender`` is deliverable at a replica whose clock is
        ``local`` iff this stamp is exactly one ahead of ``local`` in the
        sender component and not ahead anywhere else.
        """
        self._check_pid(sender)
        self._check_compatible(local)
        for i, v in enumerate(self._vec):
            if i == sender:
                if v != local._vec[i] + 1:
                    return False
            elif v > local._vec[i]:
                return False
        return True

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < len(self._vec):
            raise IndexError(f"pid {pid} out of range for {len(self._vec)} processes")

    def _check_compatible(self, other: "VectorClock") -> None:
        if len(self._vec) != len(other._vec):
            raise ValueError(
                f"incompatible vector clocks: sizes {len(self._vec)} != {len(other._vec)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VectorClock({self._vec})"
