"""Relation and partial-order helpers.

Consistency criteria quantify over relations on event sets: the program
order is a partial order, visibility relations are acyclic and reflexive,
arbitration is a total order.  This module provides the graph machinery the
exact checkers are built on: cycle detection, transitive closure,
topological-sort enumeration, chain extraction.

Relations are represented as ``dict[node, set[node]]`` adjacency maps over an
explicit node universe (so isolated nodes are kept).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator, Sequence

Node = Hashable
Relation = dict[Node, set[Node]]


def empty_relation(nodes: Iterable[Node]) -> Relation:
    """An adjacency map with every node present and no edges."""
    return {n: set() for n in nodes}


def add_edge(rel: Relation, a: Node, b: Node) -> None:
    """Insert edge ``a -> b``, extending the universe as needed."""
    rel.setdefault(a, set()).add(b)
    rel.setdefault(b, set())


def edges(rel: Relation) -> Iterator[tuple[Node, Node]]:
    for a, succs in rel.items():
        for b in succs:
            yield (a, b)


def is_acyclic(rel: Relation) -> bool:
    """True iff the relation (viewed as a digraph) has no directed cycle.

    Self-loops count as cycles, so a *reflexive* relation should be tested
    with reflexive edges stripped (see :func:`strip_reflexive`).
    """
    indegree = {n: 0 for n in rel}
    for _, b in edges(rel):
        indegree[b] += 1
    queue = deque(n for n, d in indegree.items() if d == 0)
    seen = 0
    while queue:
        n = queue.popleft()
        seen += 1
        for m in rel[n]:
            indegree[m] -= 1
            if indegree[m] == 0:
                queue.append(m)
    return seen == len(rel)


def strip_reflexive(rel: Relation) -> Relation:
    """Copy of ``rel`` without self-loops."""
    return {a: {b for b in succs if b != a} for a, succs in rel.items()}


def relation_closure(rel: Relation) -> Relation:
    """Transitive closure (Floyd–Warshall on sets; fine for small event sets)."""
    closure = {a: set(succs) for a, succs in rel.items()}
    changed = True
    while changed:
        changed = False
        for a in closure:
            extra: set[Node] = set()
            for b in closure[a]:
                extra |= closure.get(b, set()) - closure[a]
            if extra:
                closure[a] |= extra
                changed = True
    return closure


def restrict(rel: Relation, keep: set[Node]) -> Relation:
    """Sub-relation induced on ``keep``."""
    return {a: {b for b in succs if b in keep} for a, succs in rel.items() if a in keep}


def union(rel_a: Relation, rel_b: Relation) -> Relation:
    """Edge-wise union over the union of universes."""
    out = {n: set(s) for n, s in rel_a.items()}
    for a, succs in rel_b.items():
        out.setdefault(a, set()).update(succs)
        for b in succs:
            out.setdefault(b, set())
    return out


def contains(outer: Relation, inner: Relation) -> bool:
    """True iff every edge of ``inner`` is an edge of ``outer``."""
    return all(b in outer.get(a, ()) for a, b in edges(inner))


def is_total_order(rel: Relation) -> bool:
    """True iff ``rel`` (irreflexive part) is a strict total order.

    Requires: acyclic, transitive and total (any two distinct nodes
    comparable).
    """
    r = strip_reflexive(rel)
    if not is_acyclic(r):
        return False
    closure = relation_closure(r)
    nodes = list(r)
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            if b not in closure[a] and a not in closure[b]:
                return False
    return True


def topological_sorts(rel: Relation) -> Iterator[tuple[Node, ...]]:
    """Enumerate all topological orders of an acyclic relation.

    This is the engine behind linearization enumeration.  The number of
    topological sorts is exponential in general; callers are expected to
    bound the event count (the paper's example histories have <= 10 events)
    or to consume lazily with early exit.
    """
    indegree = {n: 0 for n in rel}
    for _, b in edges(rel):
        indegree[b] += 1

    prefix: list[Node] = []

    def backtrack() -> Iterator[tuple[Node, ...]]:
        ready = sorted(
            (n for n, d in indegree.items() if d == 0 and n not in placed),
            key=_sort_key,
        )
        if not ready:
            if len(prefix) == len(rel):
                yield tuple(prefix)
            return
        for n in ready:
            placed.add(n)
            prefix.append(n)
            for m in rel[n]:
                indegree[m] -= 1
            yield from backtrack()
            for m in rel[n]:
                indegree[m] += 1
            prefix.pop()
            placed.discard(n)

    placed: set[Node] = set()
    yield from backtrack()


def _sort_key(node: Node) -> tuple:
    """Stable, type-robust ordering key so enumeration order is deterministic."""
    return (str(type(node)), repr(node))


def maximal_chains(rel: Relation) -> list[tuple[Node, ...]]:
    """All maximal chains (paths through the *covering* relation).

    A chain of a poset is a set of pairwise comparable elements; a maximal
    chain is one not strictly contained in another.  In the paper's history
    model, the maximal chains of the program order are exactly the per-process
    sequences (Definition 7 uses them to define pipelined consistency).
    """
    closure = relation_closure(strip_reflexive(rel))
    nodes = set(rel)
    # Covering relation: a -> b with nothing strictly between.
    cover = empty_relation(nodes)
    for a in nodes:
        for b in closure[a]:
            if not any(b in closure[c] for c in closure[a] if c != b):
                add_edge(cover, a, b)
    sources = [n for n in nodes if not any(n in closure[m] for m in nodes if m != n)]
    chains: list[tuple[Node, ...]] = []

    def extend(path: list[Node]) -> None:
        succs = sorted(cover[path[-1]], key=_sort_key)
        if not succs:
            chains.append(tuple(path))
            return
        for nxt in succs:
            path.append(nxt)
            extend(path)
            path.pop()

    for s in sorted(sources, key=_sort_key):
        extend([s])
    if not nodes:
        return []
    return chains


def linear_extension_count(rel: Relation, limit: int = 10_000_000) -> int:
    """Count topological sorts, stopping at ``limit`` (diagnostics only)."""
    count = 0
    for _ in topological_sorts(rel):
        count += 1
        if count >= limit:
            break
    return count


def sequence_respects(rel: Relation, seq: Sequence[Node]) -> bool:
    """True iff ``seq`` is a linear extension of the acyclic relation ``rel``.

    Checks that every ordered pair of the relation's transitive closure
    appears in the same order in ``seq`` and that ``seq`` covers the universe
    exactly once.
    """
    if len(seq) != len(rel) or set(seq) != set(rel):
        return False
    position = {n: i for i, n in enumerate(seq)}
    closure = relation_closure(strip_reflexive(rel))
    return all(position[a] < position[b] for a in closure for b in closure[a])
