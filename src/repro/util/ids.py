"""Unique identifier allocation.

OR-Set insertions must be tagged with globally unique identifiers; the
simulator needs deterministic event ids.  Both come from here so that runs
are reproducible from a seed alone (no ``uuid4``/wall-clock anywhere).
"""

from __future__ import annotations

import itertools
from typing import Hashable


class IdAllocator:
    """Deterministic allocator of ``(namespace, counter)`` identifiers.

    Each namespace (typically a process id) gets an independent counter, so
    two replicas allocating concurrently never collide and the allocation is
    a pure function of the call sequence.
    """

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        self._counters: dict[Hashable, itertools.count] = {}

    def fresh(self, namespace: Hashable = 0) -> tuple[Hashable, int]:
        """Return a new identifier unique within this allocator."""
        counter = self._counters.get(namespace)
        if counter is None:
            counter = itertools.count()
            self._counters[namespace] = counter
        return (namespace, next(counter))

    def peek(self, namespace: Hashable = 0) -> int:
        """Number of ids already allocated in ``namespace``."""
        counter = self._counters.get(namespace)
        if counter is None:
            return 0
        # itertools.count has no public state; reconstruct by repr.
        return int(repr(counter).split("(")[1].rstrip(")"))


_GLOBAL = IdAllocator()


def fresh_token(namespace: Hashable = "global") -> tuple[Hashable, int]:
    """Module-level convenience allocator (process-local determinism)."""
    return _GLOBAL.fresh(namespace)
