"""Convergence analysis of simulator runs.

Eventual consistency on a finite trace means: once the network is
quiescent, every correct replica holds the same state.  Update consistency
additionally requires that the common state be *explained by a
linearization of the updates* containing the program order.  For traces of
Algorithm-1-family replicas we do not search for that linearization — the
timestamps in the trace metadata define it (the agreed arbitration), so
the check is a single replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.adt import UQADT, _canonical
from repro.sim.cluster import Cluster, Trace


def converged(cluster: Cluster) -> bool:
    """True iff every correct replica holds the same local state.

    Meaningful once ``cluster.quiescent()``; before that it just reports
    momentary agreement.
    """
    states = [_canonical(s) for s in cluster.states().values()]
    return len(set(states)) <= 1


def divergence_degree(cluster: Cluster) -> int:
    """Number of distinct local states among correct replicas (1 = agreed)."""
    states = [_canonical(s) for s in cluster.states().values()]
    return len(set(states))


def agreed_state(cluster: Cluster) -> Any:
    """The common state; raises if the replicas disagree."""
    states = cluster.states()
    canon = {_canonical(s) for s in states.values()}
    if len(canon) > 1:
        raise ValueError(f"replicas diverge: {states}")
    return next(iter(states.values()))


def expected_final_state(trace: Trace, spec: UQADT) -> Any:
    """Replay the trace's updates in timestamp order — the converged state
    Algorithm 1 commits to (the agreed linearization's final state).

    Requires update records to carry ``"timestamp"`` metadata.
    """
    stamped = []
    for record in trace.updates():
        ts = record.meta.get("timestamp")
        if ts is None:
            raise ValueError(
                f"update record {record.eid} lacks a timestamp; this trace "
                f"did not come from a timestamp-ordering replica"
            )
        stamped.append((tuple(ts), record.label))
    stamped.sort(key=lambda x: x[0])
    state = spec.initial_state()
    for _, update in stamped:
        state = spec.apply(state, update)
    return state


def log_divergence(cluster: Cluster) -> dict[int, int]:
    """Per-replica update-log divergence: entries missing vs. the union.

    For every correct replica exposing ``known_timestamps()`` (the
    Algorithm 1 family), counts how many of the union's update ids it has
    not received.  All zeros ⇔ every survivor holds the same log.  GC'd
    replicas report against their *live* logs (the collected prefix is
    common by construction).
    """
    known: dict[int, set] = {}
    for pid in cluster.alive():
        replica = cluster.replicas[pid]
        timestamps = getattr(replica, "known_timestamps", None)
        if timestamps is not None:
            known[pid] = set(timestamps())
    if not known:
        return {}
    union = set().union(*known.values())
    return {pid: len(union - uids) for pid, uids in known.items()}


@dataclass(frozen=True)
class ConvergenceReport:
    """What the watchdog saw while driving a cluster to quiescence."""

    converged: bool
    quiescent: bool
    steps: int
    #: virtual time of the first delivery after which the replicas agreed
    #: and never disagreed again (None if they never settled).
    time_to_agreement: float | None
    #: per-replica log divergence at the end (see :func:`log_divergence`).
    final_divergence: dict[int, int]
    distinct_states: int
    #: messages still pending at the end (in-flight + held).
    undelivered: int

    @property
    def flagged(self) -> bool:
        """True for runs needing attention: non-quiescent or diverged."""
        return not (self.converged and self.quiescent)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "converged" if self.converged else (
            f"DIVERGED ({self.distinct_states} states)"
        )
        tail = "" if self.quiescent else (
            f"; NON-QUIESCENT ({self.undelivered} undelivered)"
        )
        at = (
            f" at t={self.time_to_agreement:.3f}"
            if self.time_to_agreement is not None else ""
        )
        return f"{verdict}{at} after {self.steps} deliveries{tail}"


class ConvergenceWatchdog:
    """Drives a cluster to quiescence while measuring agreement.

    Delivers messages one at a time, checking replica agreement every
    ``check_every`` deliveries; reports time-to-agreement (the virtual
    time after which states agreed for good), per-replica log divergence,
    and flags runs that fail to quiesce within the step budget — the
    convergence half of the fault-injection suite, used by the chaos path
    and the fault-recovery bench.
    """

    def __init__(self, cluster: Cluster, *, check_every: int = 1) -> None:
        if check_every <= 0:
            raise ValueError("check interval must be positive")
        self.cluster = cluster
        self.check_every = check_every

    def watch(self, *, max_steps: int = 1_000_000) -> ConvergenceReport:
        """Deliver until quiescent (or ``max_steps``); return the report."""
        cluster = self.cluster
        steps = 0
        agreed_since: float | None = 0.0 if converged(cluster) else None
        while steps < max_steps and cluster.step():
            steps += 1
            if steps % self.check_every == 0:
                if converged(cluster):
                    if agreed_since is None:
                        agreed_since = cluster.now
                else:
                    agreed_since = None
        is_converged = converged(cluster)
        if not is_converged:
            agreed_since = None
        elif agreed_since is None:
            # Coarse check interval: agreement happened somewhere in the
            # last window; the current time is the honest upper bound.
            agreed_since = cluster.now
        return ConvergenceReport(
            converged=is_converged,
            quiescent=cluster.quiescent(),
            steps=steps,
            time_to_agreement=agreed_since,
            final_divergence=log_divergence(cluster),
            distinct_states=divergence_degree(cluster),
            undelivered=cluster.network.pending_count(),
        )


def update_consistent_convergence(
    cluster: Cluster, spec: UQADT
) -> tuple[bool, Any, dict[int, Any]]:
    """The full UC convergence check for a quiescent run.

    Returns ``(ok, expected_state, per_replica_states)``: ``ok`` iff every
    correct replica's state equals the replay of all updates in the agreed
    timestamp order.
    """
    expected = expected_final_state(cluster.trace, spec)
    expected_c = _canonical(expected)
    states = cluster.states()
    ok = all(_canonical(s) == expected_c for s in states.values())
    return ok, expected, states
