"""Convergence analysis of simulator runs.

Eventual consistency on a finite trace means: once the network is
quiescent, every correct replica holds the same state.  Update consistency
additionally requires that the common state be *explained by a
linearization of the updates* containing the program order.  For traces of
Algorithm-1-family replicas we do not search for that linearization — the
timestamps in the trace metadata define it (the agreed arbitration), so
the check is a single replay.
"""

from __future__ import annotations

from typing import Any

from repro.core.adt import UQADT, _canonical
from repro.sim.cluster import Cluster, Trace


def converged(cluster: Cluster) -> bool:
    """True iff every correct replica holds the same local state.

    Meaningful once ``cluster.quiescent()``; before that it just reports
    momentary agreement.
    """
    states = [_canonical(s) for s in cluster.states().values()]
    return len(set(states)) <= 1


def divergence_degree(cluster: Cluster) -> int:
    """Number of distinct local states among correct replicas (1 = agreed)."""
    states = [_canonical(s) for s in cluster.states().values()]
    return len(set(states))


def agreed_state(cluster: Cluster) -> Any:
    """The common state; raises if the replicas disagree."""
    states = cluster.states()
    canon = {_canonical(s) for s in states.values()}
    if len(canon) > 1:
        raise ValueError(f"replicas diverge: {states}")
    return next(iter(states.values()))


def expected_final_state(trace: Trace, spec: UQADT) -> Any:
    """Replay the trace's updates in timestamp order — the converged state
    Algorithm 1 commits to (the agreed linearization's final state).

    Requires update records to carry ``"timestamp"`` metadata.
    """
    stamped = []
    for record in trace.updates():
        ts = record.meta.get("timestamp")
        if ts is None:
            raise ValueError(
                f"update record {record.eid} lacks a timestamp; this trace "
                f"did not come from a timestamp-ordering replica"
            )
        stamped.append((tuple(ts), record.label))
    stamped.sort(key=lambda x: x[0])
    state = spec.initial_state()
    for _, update in stamped:
        state = spec.apply(state, update)
    return state


def update_consistent_convergence(
    cluster: Cluster, spec: UQADT
) -> tuple[bool, Any, dict[int, Any]]:
    """The full UC convergence check for a quiescent run.

    Returns ``(ok, expected_state, per_replica_states)``: ``ok`` iff every
    correct replica's state equals the replay of all updates in the agreed
    timestamp order.
    """
    expected = expected_final_state(cluster.trace, spec)
    expected_c = _canonical(expected)
    states = cluster.states()
    ok = all(_canonical(s) == expected_c for s in states.values())
    return ok, expected, states
