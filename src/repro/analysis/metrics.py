"""Message and space complexity accounting (Section VII-C).

The paper's complexity claims for Algorithm 1:

* "a unique message is broadcast for each update" — with point-to-point
  channels that is exactly ``n - 1`` sends per update and none per query;
* "each message only contains the information to identify the update and
  a timestamp composed of two integer values, that only grow
  logarithmically with the number of processes and the number of
  operations".

:func:`collect_message_stats` measures both on a finished cluster run;
:func:`payload_size_bits` gives a transport-layer encoding estimate for
arbitrary payloads (varint-style integers, UTF-8 strings), so the CRDT
baselines can be compared on the same scale (e.g. OR-Set delete payloads
carry observed tag sets and grow, Algorithm 1's stay flat).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.adt import Query, Update
from repro.sim.cluster import Cluster


def payload_size_bits(payload: object) -> int:
    """Estimated wire size of a payload, in bits.

    Integers cost their bit length (plus one length nibble, amortized away
    here for simplicity); strings cost 8 bits per UTF-8 byte; containers
    cost the sum of their items.  ``None`` and booleans cost one bit.
    """
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(payload.bit_length(), 1) + (1 if payload < 0 else 0)
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return 8 * len(payload.encode("utf-8"))
    if isinstance(payload, bytes):
        return 8 * len(payload)
    if isinstance(payload, Update):
        return payload_size_bits(payload.name) + payload_size_bits(payload.args)
    if isinstance(payload, Query):
        return (
            payload_size_bits(payload.name)
            + payload_size_bits(payload.args)
            + payload_size_bits(payload.output)
        )
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(payload_size_bits(x) for x in payload)
    if isinstance(payload, dict):
        return sum(
            payload_size_bits(k) + payload_size_bits(v) for k, v in payload.items()
        )
    raise TypeError(f"cannot estimate wire size of {type(payload).__name__}")


@dataclass(frozen=True, slots=True)
class MessageStats:
    """Aggregated network accounting for one run."""

    processes: int
    updates: int
    queries: int
    messages_sent: int
    messages_delivered: int
    sends_per_update: float
    max_timestamp_bits: int

    def broadcast_optimal(self) -> bool:
        """Exactly one broadcast (n-1 point-to-point sends) per update."""
        if self.updates == 0:
            return self.messages_sent == 0
        return self.messages_sent == self.updates * (self.processes - 1)


def collect_message_stats(cluster: Cluster) -> MessageStats:
    """Measure the Section VII-C message-complexity claims on a run."""
    updates = cluster.trace.updates()
    queries = cluster.trace.queries()
    max_ts_bits = 0
    for record in cluster.trace:
        ts = record.meta.get("timestamp")
        if ts is not None:
            cl, pid = ts
            bits = max(cl, 1).bit_length() + max(pid, 1).bit_length()
            max_ts_bits = max(max_ts_bits, bits)
    n_updates = len(updates)
    sent = cluster.network.sent_count
    return MessageStats(
        processes=cluster.n,
        updates=n_updates,
        queries=len(queries),
        messages_sent=sent,
        messages_delivered=cluster.network.delivered_count,
        sends_per_update=sent / n_updates if n_updates else 0.0,
        max_timestamp_bits=max_ts_bits,
    )


def timestamp_growth(cluster: Cluster) -> list[tuple[int, int]]:
    """(operation index, timestamp bits) series — the logarithmic-growth
    claim, plottable directly."""
    series = []
    for i, record in enumerate(cluster.trace):
        ts = record.meta.get("timestamp")
        if ts is not None:
            cl, pid = ts
            series.append((i, max(cl, 1).bit_length() + max(pid, 1).bit_length()))
    return series
