"""Staleness metrics: how out-of-date are reads, and for how long?

Update consistency allows reads to "return out-dated values" — these
metrics quantify the debt.  For a finished run with witness metadata:

* **version staleness** of a query: how many updates, already issued
  somewhere at query time, the query did not see;
* **time staleness** of a query: the age of the oldest such missing
  update (how long the replica has been behind);
* **inclusion latency** of an update: time from issue until every correct
  replica's queries see it (∞ if some replica never queried after it —
  reported as the drain time bound).

Used by the convergence ablation and available to applications that want
SLO-style reporting on simulated deployments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.cluster import Trace


@dataclass(frozen=True, slots=True)
class StalenessReport:
    """Aggregates over all queries of a trace."""

    queries: int
    stale_queries: int
    max_version_lag: int
    mean_version_lag: float
    max_time_lag: float
    mean_time_lag: float

    def fresh_fraction(self) -> float:
        """Share of queries that saw every update issued so far."""
        if self.queries == 0:
            return 1.0
        return 1.0 - self.stale_queries / self.queries


def staleness_report(trace: Trace) -> StalenessReport:
    """Compute version/time staleness over every query in the trace.

    Requires witness metadata (timestamps + per-query visibility).
    """
    issued: dict[tuple[int, int], float] = {}
    version_lags: list[int] = []
    time_lags: list[float] = []
    # Walk in record order: updates register themselves, queries compare.
    for r in trace.records:
        ts = r.meta.get("timestamp")
        if ts is None:
            raise ValueError(
                f"record {r.eid} lacks timestamp metadata; staleness needs "
                f"witness-tracking replicas"
            )
        if r.is_update:
            issued[tuple(ts)] = r.time
            continue
        visible = r.meta.get("visible")
        if visible is None:
            raise ValueError(f"query record {r.eid} lacks visibility metadata")
        # GC replicas report the folded prefix as a completeness floor
        # (every update with clock <= floor is in the base state, hence
        # visible) instead of enumerating its uids.
        floor = int(r.meta.get("visible_floor", 0) or 0)
        seen = {tuple(u) for u in visible}
        missing = {
            uid for uid in issued if uid not in seen and uid[0] > floor
        }
        version_lags.append(len(missing))
        if missing:
            oldest = min(issued[uid] for uid in missing)
            time_lags.append(r.time - oldest)
        else:
            time_lags.append(0.0)
    if not version_lags:
        return StalenessReport(0, 0, 0, 0.0, 0.0, 0.0)
    v = np.asarray(version_lags)
    t = np.asarray(time_lags)
    return StalenessReport(
        queries=len(version_lags),
        stale_queries=int((v > 0).sum()),
        max_version_lag=int(v.max()),
        mean_version_lag=float(v.mean()),
        max_time_lag=float(t.max()),
        mean_time_lag=float(t.mean()),
    )


def inclusion_latencies(trace: Trace) -> dict[tuple[int, int], float]:
    """Per update: time until *every* process that queried afterwards had
    it visible (update uid -> latency).  Updates never subsequently
    covered by a query at some process are omitted (unknowable from the
    trace)."""
    issued: dict[tuple[int, int], float] = {}
    first_seen_everywhere: dict[tuple[int, int], float] = {}
    pids = sorted({r.pid for r in trace.records})
    # For each update, track which pids have confirmed visibility.
    confirmations: dict[tuple[int, int], set[int]] = {}
    for r in trace.records:
        ts = r.meta.get("timestamp")
        if r.is_update:
            uid = tuple(ts)
            issued[uid] = r.time
            confirmations[uid] = {r.pid}  # issuer sees its own update
            continue
        visible = {tuple(u) for u in r.meta.get("visible", ())}
        floor = int(r.meta.get("visible_floor", 0) or 0)
        if floor:
            visible.update(uid for uid in issued if uid[0] <= floor)
        for uid in visible:
            if uid in confirmations and uid not in first_seen_everywhere:
                confirmations[uid].add(r.pid)
                if confirmations[uid] >= set(pids):
                    first_seen_everywhere[uid] = r.time - issued[uid]
    return first_seen_everywhere
