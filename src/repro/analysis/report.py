"""Plain-text table rendering for the benchmark harness.

Every bench prints the rows/series the paper reports (or that its claims
imply); this module keeps the formatting in one place so the outputs are
uniform and diffable.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3g}"
    if isinstance(value, frozenset):
        return "{" + ", ".join(sorted(map(repr, value))) + "}"
    return str(value)


def format_series(
    name: str, points: Sequence[tuple[Any, Any]], *, x_label: str = "x", y_label: str = "y"
) -> str:
    """Render a (x, y) series as the two columns a plot would use."""
    rows = [(x, y) for x, y in points]
    return format_table([x_label, y_label], rows, title=name)
