"""History classification reports — the Fig. 1 matrix as a function.

``classification_matrix`` runs the exact criterion checkers over a set of
named histories and renders the same rows/columns as the paper's Fig. 1
caption: one row per history, one column per criterion.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.core.adt import UQADT
from repro.core.history import History
from repro.core.criteria.lattice import classify
from repro.analysis.report import format_table


def classification_matrix(
    histories: Mapping[str, History | Callable[[], History]],
    spec: UQADT,
    criteria: Sequence[str] = ("EC", "SEC", "UC", "SUC", "PC"),
) -> tuple[str, dict[str, dict[str, bool]]]:
    """Classify each history; return (rendered table, raw results)."""
    raw: dict[str, dict[str, bool]] = {}
    rows = []
    for name, item in histories.items():
        history = item() if callable(item) else item
        results = classify(history, spec, criteria=tuple(criteria))
        raw[name] = {c: bool(results[c]) for c in criteria}
        rows.append([name] + [raw[name][c] for c in criteria])
    table = format_table(["history"] + list(criteria), rows, title="criterion matrix")
    return table, raw
