"""Analysis layer: convergence, complexity accounting, classification reports.

* :mod:`repro.analysis.convergence` — have the replicas converged, and to
  a state a linearization of the updates explains (the UC test on real
  traces)?
* :mod:`repro.analysis.metrics` — message counts and encoded sizes
  (Section VII-C: one broadcast per update; timestamps grow
  logarithmically).
* :mod:`repro.analysis.classify` — run the exact criterion checkers over
  a history and render the Fig. 1-style matrix.
* :mod:`repro.analysis.report` — plain-text table rendering shared by the
  benchmark harness.
"""

from repro.analysis.convergence import (
    ConvergenceReport,
    ConvergenceWatchdog,
    agreed_state,
    converged,
    divergence_degree,
    expected_final_state,
    log_divergence,
    update_consistent_convergence,
)
from repro.analysis.metrics import (
    MessageStats,
    collect_message_stats,
    payload_size_bits,
    timestamp_growth,
)
from repro.analysis.classify import classification_matrix
from repro.analysis.report import format_table
from repro.analysis.staleness import (
    StalenessReport,
    inclusion_latencies,
    staleness_report,
)

__all__ = [
    "converged",
    "agreed_state",
    "divergence_degree",
    "expected_final_state",
    "log_divergence",
    "update_consistent_convergence",
    "ConvergenceReport",
    "ConvergenceWatchdog",
    "MessageStats",
    "collect_message_stats",
    "payload_size_bits",
    "timestamp_growth",
    "classification_matrix",
    "format_table",
    "StalenessReport",
    "staleness_report",
    "inclusion_latencies",
]
