"""The paper's example histories, as library constants.

Figures 1a-1d and Figure 2 are the paper's ground truth for the criterion
checkers; they are exposed here so tests, benchmarks and examples all draw
from one definition.

All histories are over the integer set ``S_N`` (Example 1).
"""

from __future__ import annotations

from repro.core.history import History
from repro.specs import set_spec as S


def fig_1a() -> History:
    """EC but not SEC nor UC.

    p0: I(1) . R/{2} . R/{1} . R/∅^ω
    p1: I(2) . R/{1} . R/{2} . R/∅^ω
    """
    return History.from_processes(
        [
            [S.insert(1), S.read({2}), S.read({1}), (S.read(set()), True)],
            [S.insert(2), S.read({1}), S.read({2}), (S.read(set()), True)],
        ]
    )


def fig_1b() -> History:
    """SEC but not UC.

    p0: I(1) . D(2) . R/{1,2}^ω
    p1: I(2) . D(1) . R/{1,2}^ω
    """
    return History.from_processes(
        [
            [S.insert(1), S.delete(2), (S.read({1, 2}), True)],
            [S.insert(2), S.delete(1), (S.read({1, 2}), True)],
        ]
    )


def fig_1c() -> History:
    """SEC and UC but not SUC.

    p0: I(1) . R/∅ . R/{1,2}^ω
    p1: I(2) . R/{1,2}^ω
    """
    return History.from_processes(
        [
            [S.insert(1), S.read(set()), (S.read({1, 2}), True)],
            [S.insert(2), (S.read({1, 2}), True)],
        ]
    )


def fig_1d() -> History:
    """SUC but not PC.

    p0: I(1) . R/{1} . I(2) . R/{1,2}^ω
    p1: R/{2} . R/{1,2}^ω
    """
    return History.from_processes(
        [
            [S.insert(1), S.read({1}), S.insert(2), (S.read({1, 2}), True)],
            [S.read({2}), (S.read({1, 2}), True)],
        ]
    )


def fig_2() -> History:
    """PC but not EC (the Proposition 1 gadget).

    p0: I(1) . I(3) . R/{1,3} . R/{1,2,3} . R/{1,2}^ω
    p1: I(2) . D(3) . R/{2}   . R/{1,2}   . R/{1,2,3}^ω
    """
    return History.from_processes(
        [
            [
                S.insert(1),
                S.insert(3),
                S.read({1, 3}),
                S.read({1, 2, 3}),
                (S.read({1, 2}), True),
            ],
            [
                S.insert(2),
                S.delete(3),
                S.read({2}),
                S.read({1, 2}),
                (S.read({1, 2, 3}), True),
            ],
        ]
    )


#: The Fig. 1 caption, as machine-checkable ground truth:
#: history -> {criterion: expected}.
FIG1_EXPECTED = {
    "1a": {"EC": True, "SEC": False, "UC": False, "SUC": False},
    "1b": {"EC": True, "SEC": True, "UC": False, "SUC": False},
    "1c": {"EC": True, "SEC": True, "UC": True, "SUC": False},
    "1d": {"EC": True, "SEC": True, "UC": True, "SUC": True, "PC": False},
}

FIG1_BUILDERS = {"1a": fig_1a, "1b": fig_1b, "1c": fig_1c, "1d": fig_1d}

#: Fig. 2 ground truth.
FIG2_EXPECTED = {"PC": True, "EC": False}
