"""``repro.proto`` — the sans-io protocol core.

Everything the paper's replicas *are* — Algorithm 1's timestamped update
log, the anti-entropy v2 digest handshake, garbage collection and
crash-recovery — lives behind three wait-free hooks (``on_update``,
``on_query``, ``on_message``) that never block and never touch a socket.
This package makes that boundary a first-class, typed contract:

* :mod:`repro.proto.events` — what the outside world tells the protocol
  (:class:`UpdateSubmitted`, :class:`QuerySubmitted`,
  :class:`MessageReceived`, :class:`SyncTick`, :class:`CrashRecovered`);
* :mod:`repro.proto.effects` — what the protocol asks the outside world
  to do (:class:`Send`, :class:`Broadcast`, :class:`Persist`,
  :class:`Timer`, :class:`QueryAnswered`);
* :mod:`repro.proto.core` — :class:`ProtocolCore`, the state machine
  consuming events and emitting effects around one replica instance;
* :mod:`repro.proto.wire` — the pure value codec: JSON encoding for every
  payload shape the protocol ships, plus the durable replica image
  (``replica_snapshot`` / ``restore_replica``).

The package is **sans-io by construction and by lint**: uqlint rule
REP204 bans I/O, ``asyncio``, ``socket`` and wall-clock imports anywhere
under ``repro/proto``.  Two backends drive the same core:

* :class:`repro.sim.cluster.Cluster` — the deterministic discrete-event
  simulator, now a thin effect interpreter (every chaos/fuzz/persistence
  adversary exercises exactly this code);
* :mod:`repro.net` — real asyncio TCP peer links plus an HTTP front-end
  serving UQ-ADT objects to concurrent clients.

Because both backends interpret the *same* effects from the *same* core,
there is no semantic fork between "what we proved in the simulator" and
"what runs on the wire" — the differential test in
``tests/net/test_differential.py`` pins the two byte-for-byte.
"""

from repro.proto.core import ProtocolCore
from repro.proto.effects import Broadcast, Effect, Persist, QueryAnswered, Send, Timer
from repro.proto.events import (
    CrashRecovered,
    Event,
    MessageReceived,
    QuerySubmitted,
    SyncTick,
    UpdateSubmitted,
)
from repro.proto.wire import (
    decode_payload,
    decode_value,
    encode_payload,
    encode_value,
    replica_snapshot,
    restore_replica,
)

__all__ = [
    "ProtocolCore",
    "Event",
    "UpdateSubmitted",
    "QuerySubmitted",
    "MessageReceived",
    "SyncTick",
    "CrashRecovered",
    "Effect",
    "Send",
    "Broadcast",
    "Persist",
    "Timer",
    "QueryAnswered",
    "encode_value",
    "decode_value",
    "encode_payload",
    "decode_payload",
    "replica_snapshot",
    "restore_replica",
]
