"""Typed protocol events — everything a backend can tell the core.

An event is a fact about the outside world, not a request for behaviour:
the application submitted an operation, the transport delivered bytes, a
timer fired, the process restarted from its durable image.  The core
(:class:`repro.proto.core.ProtocolCore`) consumes events and answers with
:mod:`repro.proto.effects`; it never learns *how* the event happened
(simulated channel vs TCP socket, virtual vs wall-clock timer), which is
the whole sans-io contract.

All events are frozen — a backend may log, queue or replay them freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Union

from repro.core.adt import Update


@dataclass(frozen=True, slots=True)
class UpdateSubmitted:
    """The local application issued an update (Algorithm 1 line 4)."""

    update: Update


@dataclass(frozen=True, slots=True)
class QuerySubmitted:
    """The local application issued a query (Algorithm 1 line 12).

    The answer comes back as a :class:`~repro.proto.effects.QueryAnswered`
    effect — queries are wait-free, so the answer is always in the same
    effect batch, never deferred.
    """

    name: str
    args: tuple[Hashable, ...] = ()


@dataclass(frozen=True, slots=True)
class MessageReceived:
    """The transport delivered one peer payload (already decoded)."""

    src: int
    payload: Any


@dataclass(frozen=True, slots=True)
class SyncTick:
    """A periodic maintenance timer fired.

    ``kind="sync"`` asks the core to start an anti-entropy round (a
    digest broadcast peers answer with missing updates); ``"heartbeat"``
    asks for a clock-only liveness beacon (garbage-collected replicas use
    it to advance the stability frontier).  Cores whose replica does not
    speak the requested dialect emit no effects — ticking is always safe.
    """

    kind: str = "sync"


@dataclass(frozen=True, slots=True)
class CrashRecovered:
    """The process restarted and its durable image was read back.

    ``snapshot`` is the :func:`repro.proto.wire.replica_snapshot` JSON the
    backend's storage survived the crash with; ``fsync_point`` is already
    baked into that image by whoever took it.  The core rebuilds its
    replica from scratch, restores the image, and emits the rejoin
    effects (an anti-entropy request plus whatever the restore hooks
    queued).
    """

    snapshot: str
    #: informational only (carried into traces); the truncation itself
    #: happened when the snapshot was taken.
    fsync_point: int | None = field(default=None)


Event = Union[UpdateSubmitted, QuerySubmitted, MessageReceived, SyncTick, CrashRecovered]
