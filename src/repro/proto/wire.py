"""The pure wire/value codec of the protocol layer.

Everything the protocol ships — ``(clock, pid, update)`` triples, sync
digests, state-transfer dicts, heartbeats — and everything it persists —
the durable replica image read back by crash-recovery — round-trips
through the functions here.  The codec builds only plain data (no pickle,
no code execution), so decoding untrusted bytes is safe, and its output is
deterministic (sets are sorted by a stable key), so two encodings of the
same value are byte-identical — a property both the persistence tests and
the sim↔net differential test rely on.

Python value shapes JSON cannot express natively (tuples, frozensets,
dicts with non-string keys, :class:`~repro.core.adt.Update` /
:class:`~repro.core.adt.Query` operations) each get a small
``{"@": tag, ...}`` wrapper.

This module is the historical home of ``repro.sim.persist``'s codec; the
sim module re-exports it unchanged.  It moved here because the *network*
backend needs it too: :mod:`repro.net` frames :func:`encode_payload`
bytes over TCP, and its durable store writes :func:`replica_snapshot`
images.  Keeping one codec is what makes the two backends
wire-compatible.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.adt import Query, Update

#: durable replica image formats (see :func:`replica_snapshot`).
REPLICA_FORMAT = "repro-replica-log-v2"
REPLICA_FORMAT_V1 = "repro-replica-log-v1"


def encode_value(value: Any) -> Any:
    """Lower a Python value to a JSON-compatible structure."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Update):
        return {"@": "update", "name": value.name, "args": encode_value(value.args)}
    if isinstance(value, Query):
        return {
            "@": "query", "name": value.name,
            "args": encode_value(value.args), "output": encode_value(value.output),
        }
    if isinstance(value, tuple):
        return {"@": "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        # Deterministic output: sort by a stable key.
        items = sorted((encode_value(v) for v in value), key=repr)
        return {"@": "frozenset", "items": items}
    if isinstance(value, set):
        items = sorted((encode_value(v) for v in value), key=repr)
        return {"@": "set", "items": items}
    if isinstance(value, dict):
        # Deterministic output: insertion order must not leak into the
        # bytes (two structurally equal dicts encode identically).
        items = sorted(
            ([encode_value(k), encode_value(v)] for k, v in value.items()),
            key=lambda kv: repr(kv[0]),
        )
        return {"@": "dict", "items": items}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    raise TypeError(f"cannot persist value of type {type(value).__name__}")


def decode_value(data: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(data, list):
        return [decode_value(v) for v in data]
    if not isinstance(data, dict):
        return data
    tag = data.get("@")
    if tag == "update":
        return Update(data["name"], decode_value(data["args"]))
    if tag == "query":
        return Query(
            data["name"], decode_value(data["args"]), decode_value(data["output"])
        )
    if tag == "tuple":
        return tuple(decode_value(v) for v in data["items"])
    if tag == "frozenset":
        return frozenset(decode_value(v) for v in data["items"])
    if tag == "set":
        return set(decode_value(v) for v in data["items"])
    if tag == "dict":
        return {decode_value(k): decode_value(v) for k, v in data["items"]}
    raise ValueError(f"unknown tag {tag!r} in encoded value")


# -- network payload codec -----------------------------------------------------


def encode_payload(payload: Any) -> bytes:
    """One protocol payload as canonical UTF-8 JSON bytes.

    Covers every payload shape the replicas emit: wire triples, sync
    requests/responses/state transfers, heartbeats, and anything built
    from the :func:`encode_value` vocabulary.  The transport frames these
    bytes (see :mod:`repro.net.framing`); the codec itself knows nothing
    about sockets.
    """
    return json.dumps(
        encode_value(payload), separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


def decode_payload(data: bytes) -> Any:
    """Inverse of :func:`encode_payload`."""
    return decode_value(json.loads(data.decode("utf-8")))


# -- peer-frame trace headers --------------------------------------------------
#
# The networked backend's MSG frames may carry an optional trailing header
# dict next to the protocol payload (see ``repro.net.framing``).  Headers
# are observability metadata — trace propagation today, whatever comes
# next tomorrow — so the codec here is deliberately lax on decode: unknown
# header fields and malformed entries are *ignored*, never fatal.  A new
# node talking to an old one (or vice versa) must keep replicating even if
# one side does not understand the other's telemetry.

#: The one header field this version understands: a map from timestamp
#: key (``"clock.pid"``) to ``[trace_id, submit_wall_time]``.
TRACES_HEADER = "traces"


def encode_ts_key(timestamp: Any) -> str:
    """A ``(clock, pid)`` protocol timestamp as a JSON-object key."""
    clock, pid = timestamp
    return f"{int(clock)}.{int(pid)}"


def decode_ts_key(key: str) -> tuple[int, int]:
    """Inverse of :func:`encode_ts_key`."""
    clock_text, _, pid_text = key.partition(".")
    return int(clock_text), int(pid_text)


def encode_trace_headers(
    traces: dict[tuple[int, int], tuple[str, float]],
) -> dict[str, Any]:
    """Build the frame-header dict carrying ``traces`` (may be empty)."""
    return {
        TRACES_HEADER: {
            encode_ts_key(ts): [str(trace_id), float(t0)]
            for ts, (trace_id, t0) in traces.items()
        }
    }


def decode_trace_headers(headers: Any) -> dict[tuple[int, int], tuple[str, float]]:
    """Extract the trace map from a frame-header dict, forgivingly.

    Anything that is not shaped like this version's ``traces`` field —
    a non-dict header, unknown sibling fields, entries whose key or value
    does not parse — is skipped without error (forward compatibility with
    header fields minted by newer nodes).
    """
    out: dict[tuple[int, int], tuple[str, float]] = {}
    if not isinstance(headers, dict):
        return out
    traces = headers.get(TRACES_HEADER)
    if not isinstance(traces, dict):
        return out
    for key, value in traces.items():
        try:
            ts = decode_ts_key(str(key))
            trace_id, t0 = value
            out[ts] = (str(trace_id), float(t0))
        except (ValueError, TypeError):
            continue
    return out


# -- the durable replica image -------------------------------------------------


def replica_snapshot(replica: Any, *, fsync_point: int | None = None) -> str:
    """Serialize a replica's durable state (update log + Lamport clock).

    ``fsync_point`` caps how many log entries survived the crash (``None``
    = the whole log was fsynced).  The clock always survives in full (a
    write-ahead cell, fsynced at every tick): a recovering process must
    never reuse a ``(clock, pid)`` timestamp that copies of its pre-crash
    broadcasts may still carry.  The replica must be of the
    :class:`~repro.core.universal.UniversalReplica` family (an ``updates``
    log of ``(clock, pid, update)`` triples and a ``clock``).

    Format v2 additionally records:

    * ``complete`` — whether the snapshot holds the *whole* log (no
      fsync truncation), so restore knows whether stored completeness
      claims can be trusted verbatim;
    * ``gc`` — for garbage-collected replicas (anything exposing
      ``durable_gc_state``): the compacted base state, its clock floor,
      the fold frontier and the ``heard`` vector.  Without it a
      crash+recover silently rewinds every collected update — the
      compacted base is modeled as an atomically-rewritten segment, so
      the fsync point never truncates it.
    """
    entries = list(replica.updates)
    if fsync_point is not None:
        if fsync_point < 0:
            raise ValueError(f"fsync point must be non-negative, got {fsync_point}")
        entries = entries[:fsync_point]
    doc = {
        "format": REPLICA_FORMAT,
        "pid": replica.pid,
        "clock": replica.clock.value,
        "complete": len(entries) == len(replica.updates),
        "entries": [encode_value(tuple(e)) for e in entries],
    }
    durable_gc = getattr(replica, "durable_gc_state", None)
    if durable_gc is not None:
        gc = durable_gc()
        doc["gc"] = {
            "base": encode_value(gc["base"]),
            "clock_floor": int(gc["clock_floor"]),
            "frontier": encode_value(gc["frontier"]),
            "heard": encode_value(tuple(gc["heard"])),
        }
    return json.dumps(doc)


def restore_replica(replica: Any, text: str) -> int:
    """Load a :func:`replica_snapshot` into a fresh replica of the same pid.

    Restores the clock first (no timestamp reuse after log amnesia), then
    installs the compacted GC state if the snapshot carries one, then
    folds the surviving entries through the replica's ``load_log``.
    Garbage-collected replicas finally re-derive their ``heard`` claims
    (``finish_restore``): trusted verbatim from a complete snapshot,
    rewound to what the surviving prefix proves after a truncated one.
    Returns the number of log entries restored.
    """
    doc = json.loads(text)
    if not isinstance(doc, dict) or doc.get("format") not in (
        REPLICA_FORMAT, REPLICA_FORMAT_V1,
    ):
        raise ValueError(f"not a {REPLICA_FORMAT} file")
    if int(doc["pid"]) != replica.pid:
        raise ValueError(
            f"snapshot belongs to process {doc['pid']}, not {replica.pid}"
        )
    replica.clock.merge(int(doc["clock"]))
    gc_doc = doc.get("gc")
    if gc_doc is not None:
        install = getattr(replica, "install_gc_state", None)
        if install is None:
            raise ValueError(
                "snapshot carries a compacted base state (GC section) but "
                f"the target replica ({type(replica).__name__}) cannot "
                "install one; restore into a GarbageCollectedReplica"
            )
        frontier = decode_value(gc_doc["frontier"])
        install(
            base=decode_value(gc_doc["base"]),
            clock_floor=int(gc_doc["clock_floor"]),
            frontier=None if frontier is None else tuple(frontier),
        )
    loaded = replica.load_log(decode_value(e) for e in doc["entries"])
    finish = getattr(replica, "finish_restore", None)
    if finish is not None:
        complete = bool(doc.get("complete", False))
        stored_heard = gc_doc.get("heard") if gc_doc is not None else None
        finish(
            int(doc["clock"]),
            heard=decode_value(stored_heard)
            if complete and stored_heard is not None else None,
        )
    return loaded
