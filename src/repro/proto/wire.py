"""The pure wire/value codec of the protocol layer.

Everything the protocol ships — ``(clock, pid, update)`` triples, sync
digests, state-transfer dicts, heartbeats — and everything it persists —
the durable replica image read back by crash-recovery — round-trips
through the functions here.  The codec builds only plain data (no pickle,
no code execution), so decoding untrusted bytes is safe, and its output is
deterministic (sets are sorted by a stable key), so two encodings of the
same value are byte-identical — a property both the persistence tests and
the sim↔net differential test rely on.

Python value shapes JSON cannot express natively (tuples, frozensets,
dicts with non-string keys, :class:`~repro.core.adt.Update` /
:class:`~repro.core.adt.Query` operations) each get a small
``{"@": tag, ...}`` wrapper.

This module is the historical home of ``repro.sim.persist``'s codec; the
sim module re-exports it unchanged.  It moved here because the *network*
backend needs it too: :mod:`repro.net` frames :func:`encode_payload`
bytes over TCP, and its durable store writes :func:`replica_snapshot`
images.  Keeping one codec is what makes the two backends
wire-compatible.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable

from repro.core.adt import Query, Update

#: durable replica image formats (see :func:`replica_snapshot`).
REPLICA_FORMAT = "repro-replica-log-v2"
REPLICA_FORMAT_V1 = "repro-replica-log-v1"
#: v3: a journal image — an ordered record sequence (meta, compacted
#: base, write-ahead clock cell, one record per update) threaded on a
#: rolling digest chain.  This is the textual twin of the on-disk binary
#: journal (:mod:`repro.storage.journal`); both speak the same records.
REPLICA_FORMAT_V3 = "repro-replica-journal-v3"


def encode_value(value: Any) -> Any:
    """Lower a Python value to a JSON-compatible structure."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Update):
        return {"@": "update", "name": value.name, "args": encode_value(value.args)}
    if isinstance(value, Query):
        return {
            "@": "query", "name": value.name,
            "args": encode_value(value.args), "output": encode_value(value.output),
        }
    if isinstance(value, tuple):
        return {"@": "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        # Deterministic output: sort by a stable key.
        items = sorted((encode_value(v) for v in value), key=repr)
        return {"@": "frozenset", "items": items}
    if isinstance(value, set):
        items = sorted((encode_value(v) for v in value), key=repr)
        return {"@": "set", "items": items}
    if isinstance(value, dict):
        # Deterministic output: insertion order must not leak into the
        # bytes (two structurally equal dicts encode identically).
        items = sorted(
            ([encode_value(k), encode_value(v)] for k, v in value.items()),
            key=lambda kv: repr(kv[0]),
        )
        return {"@": "dict", "items": items}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    raise TypeError(f"cannot persist value of type {type(value).__name__}")


def decode_value(data: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(data, list):
        return [decode_value(v) for v in data]
    if not isinstance(data, dict):
        return data
    tag = data.get("@")
    if tag == "update":
        return Update(data["name"], decode_value(data["args"]))
    if tag == "query":
        return Query(
            data["name"], decode_value(data["args"]), decode_value(data["output"])
        )
    if tag == "tuple":
        return tuple(decode_value(v) for v in data["items"])
    if tag == "frozenset":
        return frozenset(decode_value(v) for v in data["items"])
    if tag == "set":
        return set(decode_value(v) for v in data["items"])
    if tag == "dict":
        return {decode_value(k): decode_value(v) for k, v in data["items"]}
    raise ValueError(f"unknown tag {tag!r} in encoded value")


# -- network payload codec -----------------------------------------------------


def encode_payload(payload: Any) -> bytes:
    """One protocol payload as canonical UTF-8 JSON bytes.

    Covers every payload shape the replicas emit: wire triples, sync
    requests/responses/state transfers, heartbeats, and anything built
    from the :func:`encode_value` vocabulary.  The transport frames these
    bytes (see :mod:`repro.net.framing`); the codec itself knows nothing
    about sockets.
    """
    return json.dumps(
        encode_value(payload), separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


def decode_payload(data: bytes) -> Any:
    """Inverse of :func:`encode_payload`."""
    return decode_value(json.loads(data.decode("utf-8")))


# -- peer-frame trace headers --------------------------------------------------
#
# The networked backend's MSG frames may carry an optional trailing header
# dict next to the protocol payload (see ``repro.net.framing``).  Headers
# are observability metadata — trace propagation today, whatever comes
# next tomorrow — so the codec here is deliberately lax on decode: unknown
# header fields and malformed entries are *ignored*, never fatal.  A new
# node talking to an old one (or vice versa) must keep replicating even if
# one side does not understand the other's telemetry.

#: The one header field this version understands: a map from timestamp
#: key (``"clock.pid"``) to ``[trace_id, submit_wall_time]``.
TRACES_HEADER = "traces"


def encode_ts_key(timestamp: Any) -> str:
    """A ``(clock, pid)`` protocol timestamp as a JSON-object key."""
    clock, pid = timestamp
    return f"{int(clock)}.{int(pid)}"


def decode_ts_key(key: str) -> tuple[int, int]:
    """Inverse of :func:`encode_ts_key`."""
    clock_text, _, pid_text = key.partition(".")
    return int(clock_text), int(pid_text)


def encode_trace_headers(
    traces: dict[tuple[int, int], tuple[str, float]],
) -> dict[str, Any]:
    """Build the frame-header dict carrying ``traces`` (may be empty)."""
    return {
        TRACES_HEADER: {
            encode_ts_key(ts): [str(trace_id), float(t0)]
            for ts, (trace_id, t0) in traces.items()
        }
    }


def decode_trace_headers(headers: Any) -> dict[tuple[int, int], tuple[str, float]]:
    """Extract the trace map from a frame-header dict, forgivingly.

    Anything that is not shaped like this version's ``traces`` field —
    a non-dict header, unknown sibling fields, entries whose key or value
    does not parse — is skipped without error (forward compatibility with
    header fields minted by newer nodes).
    """
    out: dict[tuple[int, int], tuple[str, float]] = {}
    if not isinstance(headers, dict):
        return out
    traces = headers.get(TRACES_HEADER)
    if not isinstance(traces, dict):
        return out
    for key, value in traces.items():
        try:
            ts = decode_ts_key(str(key))
            trace_id, t0 = value
            out[ts] = (str(trace_id), float(t0))
        except (ValueError, TypeError):
            continue
    return out


# -- the v3 journal record vocabulary ------------------------------------------
#
# A v3 durable image is not a monolithic document but an ordered sequence
# of *journal records* — the same records the on-disk binary journal
# (:mod:`repro.storage.journal`) appends one fsync at a time:
#
#   {"r": "meta",  "format": ..., "pid": p}            file/image header
#   {"r": "base",  "c": n, "base": ..., "clock_floor": f,
#                  "frontier": ..., "heard": ...}      compacted GC segment
#   {"r": "clock", "c": n, "value": v}                 write-ahead clock cell
#   {"r": "heard", "c": n, "h": ...}                   heard-vector advance
#   {"r": "entry", "c": n, "k": "cl.pid", "e": ...}    one logged update
#
# ``c`` is the journal's update counter: a per-generation monotone serial
# that the engine's current-state k/v map references (key -> (counter,
# record)), and whose order refines the Lamport ``(clock, pid)`` total
# order the log itself is sorted by.  Every record also carries ``d``, a
# prefix of the rolling digest *before* the record — so the sequence
# forms a hash chain ``H = sha256(H' | sha256(record))`` from a per-pid
# genesis value, and a reordered, spliced or bit-flipped image fails
# verification even when each record is individually well-formed.

#: bytes of the hex rolling digest each record carries as its ``d`` link.
DIGEST_LINK_HEX = 16


def genesis_digest(pid: int) -> bytes:
    """The rolling digest's seed for process ``pid``'s journal."""
    return hashlib.sha256(f"{REPLICA_FORMAT_V3}:{int(pid)}".encode("utf-8")).digest()


def encode_record(record: dict) -> bytes:
    """One journal record as canonical UTF-8 JSON bytes (what the binary
    journal frames and the digest chain hashes)."""
    return json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8")


def advance_digest(digest: bytes, payload: bytes) -> bytes:
    """One step of the rolling digest: ``H(H' | H(record))``."""
    return hashlib.sha256(digest + hashlib.sha256(payload).digest()).digest()


def chain_record(digest: bytes, record: dict) -> tuple[bytes, dict]:
    """Stamp ``record`` with the current chain link and advance the digest.

    Returns ``(new_digest, stamped_record)``; the stamped record's ``d``
    field is the hex prefix of ``digest`` (the chain state *before* this
    record), so a verifier replaying from :func:`genesis_digest` can check
    every link without trusting any record's own claims.
    """
    stamped = dict(record)
    stamped["d"] = digest.hex()[:DIGEST_LINK_HEX]
    return advance_digest(digest, encode_record(stamped)), stamped


def verify_chain(pid: int, records: Iterable[dict]) -> str:
    """Replay the digest chain over ``records``; returns the final digest
    (hex).  Raises :class:`ValueError` at the first broken link."""
    digest = genesis_digest(pid)
    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            raise ValueError(f"journal record {i} is not an object")
        if rec.get("d") != digest.hex()[:DIGEST_LINK_HEX]:
            raise ValueError(
                f"digest chain mismatch at record {i} "
                f"(r={rec.get('r')!r}): image is corrupt, reordered or "
                "spliced from another journal"
            )
        digest = advance_digest(digest, encode_record(rec))
    return digest.hex()


def journal_records(
    replica: Any, *, fsync_point: int | None = None
) -> tuple[list[dict], bool]:
    """The (unstamped) v3 record sequence for ``replica``'s durable state.

    Shared by :func:`replica_snapshot` (one-shot image) and the storage
    engine's compaction rewrite (fresh journal generation).  Returns
    ``(records, complete)`` where ``complete`` is False when
    ``fsync_point`` truncated the entry tail.  The write-ahead rule is
    encoded in the order: the clock cell precedes every entry, and the
    compacted base — an atomically-rewritten segment the fsync point
    never truncates — precedes both.
    """
    entries = list(replica.updates)
    complete = True
    if fsync_point is not None:
        if fsync_point < 0:
            raise ValueError(f"fsync point must be non-negative, got {fsync_point}")
        entries = entries[:fsync_point]
        complete = len(entries) == len(replica.updates)
    records: list[dict] = [
        {"r": "meta", "format": REPLICA_FORMAT_V3, "pid": replica.pid}
    ]
    counter = 0
    durable_gc = getattr(replica, "durable_gc_state", None)
    if durable_gc is not None:
        gc = durable_gc()
        counter += 1
        records.append({
            "r": "base", "c": counter,
            "base": encode_value(gc["base"]),
            "clock_floor": int(gc["clock_floor"]),
            "frontier": encode_value(gc["frontier"]),
            "heard": encode_value(tuple(gc["heard"])),
        })
    counter += 1
    records.append({"r": "clock", "c": counter, "value": replica.clock.value})
    for cl, j, update in entries:
        counter += 1
        records.append({
            "r": "entry", "c": counter,
            "k": encode_ts_key((cl, j)),
            "e": encode_value((cl, j, update)),
        })
    return records, complete


def journal_image(
    pid: int, records: list[dict], digest: str, *, complete: bool = True
) -> str:
    """Assemble a v3 image document from already-chained records.

    The storage engine calls this with the records it read (and verified)
    off the binary journal; :func:`restore_replica` re-verifies the chain
    end to end, so recovery never trusts the reader's bookkeeping.
    """
    return json.dumps({
        "format": REPLICA_FORMAT_V3,
        "pid": int(pid),
        "complete": bool(complete),
        "digest": digest,
        "records": records,
    })


# -- the durable replica image -------------------------------------------------


def replica_snapshot(
    replica: Any, *, fsync_point: int | None = None, version: int = 2
) -> str:
    """Serialize a replica's durable state (update log + Lamport clock).

    ``fsync_point`` caps how many log entries survived the crash (``None``
    = the whole log was fsynced).  The clock always survives in full (a
    write-ahead cell, fsynced at every tick): a recovering process must
    never reuse a ``(clock, pid)`` timestamp that copies of its pre-crash
    broadcasts may still carry.  The replica must be of the
    :class:`~repro.core.universal.UniversalReplica` family (an ``updates``
    log of ``(clock, pid, update)`` triples and a ``clock``).

    Format v2 additionally records:

    * ``complete`` — whether the snapshot holds the *whole* log (no
      fsync truncation), so restore knows whether stored completeness
      claims can be trusted verbatim;
    * ``gc`` — for garbage-collected replicas (anything exposing
      ``durable_gc_state``): the compacted base state, its clock floor,
      the fold frontier and the ``heard`` vector.  Without it a
      crash+recover silently rewinds every collected update — the
      compacted base is modeled as an atomically-rewritten segment, so
      the fsync point never truncates it.

    ``version=3`` emits the journal image instead: the
    :func:`journal_records` sequence threaded on the rolling digest
    chain — same durable truth, but shaped like the on-disk binary
    journal, so recovery is a verified record replay rather than a
    monolithic document load.
    """
    if version == 3:
        records, complete = journal_records(replica, fsync_point=fsync_point)
        digest = genesis_digest(replica.pid)
        stamped = []
        for rec in records:
            digest, s = chain_record(digest, rec)
            stamped.append(s)
        return journal_image(
            replica.pid, stamped, digest.hex(), complete=complete
        )
    if version != 2:
        raise ValueError(f"unknown replica image version {version!r}")
    entries = list(replica.updates)
    if fsync_point is not None:
        if fsync_point < 0:
            raise ValueError(f"fsync point must be non-negative, got {fsync_point}")
        entries = entries[:fsync_point]
    doc = {
        "format": REPLICA_FORMAT,
        "pid": replica.pid,
        "clock": replica.clock.value,
        "complete": len(entries) == len(replica.updates),
        "entries": [encode_value(tuple(e)) for e in entries],
    }
    durable_gc = getattr(replica, "durable_gc_state", None)
    if durable_gc is not None:
        gc = durable_gc()
        doc["gc"] = {
            "base": encode_value(gc["base"]),
            "clock_floor": int(gc["clock_floor"]),
            "frontier": encode_value(gc["frontier"]),
            "heard": encode_value(tuple(gc["heard"])),
        }
    return json.dumps(doc)


def restore_replica(replica: Any, text: str) -> int:
    """Load a :func:`replica_snapshot` into a fresh replica of the same pid.

    Restores the clock first (no timestamp reuse after log amnesia), then
    installs the compacted GC state if the snapshot carries one, then
    folds the surviving entries through the replica's ``load_log``.
    Garbage-collected replicas finally re-derive their ``heard`` claims
    (``finish_restore``): trusted verbatim from a complete snapshot,
    rewound to what the surviving prefix proves after a truncated one.
    Returns the number of log entries restored.

    v3 journal images are accepted too: the digest chain is verified end
    to end first (a broken link raises :class:`ValueError`), then the
    records are replayed in journal order — clock cells merge, base
    records install, entries fold through ``load_log`` — which gives the
    identical restore semantics whether the image came from a one-shot
    snapshot or an incrementally grown journal.
    """
    doc = json.loads(text)
    if isinstance(doc, dict) and doc.get("format") == REPLICA_FORMAT_V3:
        return _restore_v3(replica, doc)
    if not isinstance(doc, dict) or doc.get("format") not in (
        REPLICA_FORMAT, REPLICA_FORMAT_V1,
    ):
        raise ValueError(f"not a {REPLICA_FORMAT} file")
    if int(doc["pid"]) != replica.pid:
        raise ValueError(
            f"snapshot belongs to process {doc['pid']}, not {replica.pid}"
        )
    replica.clock.merge(int(doc["clock"]))
    gc_doc = doc.get("gc")
    if gc_doc is not None:
        _install_base(
            replica,
            base=decode_value(gc_doc["base"]),
            clock_floor=int(gc_doc["clock_floor"]),
            frontier=decode_value(gc_doc["frontier"]),
        )
    loaded = replica.load_log(decode_value(e) for e in doc["entries"])
    finish = getattr(replica, "finish_restore", None)
    if finish is not None:
        complete = bool(doc.get("complete", False))
        stored_heard = gc_doc.get("heard") if gc_doc is not None else None
        finish(
            int(doc["clock"]),
            heard=decode_value(stored_heard)
            if complete and stored_heard is not None else None,
        )
    return loaded


def _install_base(replica: Any, *, base: Any, clock_floor: int, frontier: Any) -> None:
    """Install a compacted base segment into ``replica`` (v2 ``gc``
    section or v3 ``base`` record), refusing targets that cannot."""
    install = getattr(replica, "install_gc_state", None)
    if install is None:
        raise ValueError(
            "image carries a compacted base state but the target replica "
            f"({type(replica).__name__}) cannot install one; restore into "
            "a GarbageCollectedReplica"
        )
    install(
        base=base,
        clock_floor=int(clock_floor),
        frontier=None if frontier is None else tuple(frontier),
    )


def _restore_v3(replica: Any, doc: dict) -> int:
    """Replay a v3 journal image into a fresh replica (see
    :func:`restore_replica`).  The chain is verified before any record
    touches replica state."""
    pid = int(doc["pid"])
    if pid != replica.pid:
        raise ValueError(f"snapshot belongs to process {pid}, not {replica.pid}")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        raise ValueError("v3 journal image carries no records")
    digest = verify_chain(pid, records)
    if doc.get("digest") != digest:
        raise ValueError(
            f"rolling digest mismatch: image claims {doc.get('digest')!r}, "
            f"chain replays to {digest!r}"
        )
    meta = records[0]
    if meta.get("r") != "meta" or meta.get("format") != REPLICA_FORMAT_V3:
        raise ValueError("v3 journal image does not start with a meta record")
    if int(meta.get("pid", pid)) != pid:
        raise ValueError(
            f"journal meta belongs to process {meta.get('pid')}, not {pid}"
        )
    # One pass to collect the current-state cells: the clock cell is
    # write-ahead (the max of every cell ever appended), the last base
    # record wins (floors are monotone), entries keep journal order —
    # ``load_log`` dedups re-appends.
    clock = 0
    base_rec: dict | None = None
    heard_rec: dict | None = None
    entry_recs: list[dict] = []
    for rec in records[1:]:
        kind = rec.get("r")
        if kind == "clock":
            clock = max(clock, int(rec["value"]))
        elif kind == "base":
            base_rec = rec
        elif kind == "heard":
            heard_rec = rec
        elif kind == "entry":
            entry_recs.append(rec)
        # unknown record kinds: skip (forward compatibility)
    replica.clock.merge(clock)
    if base_rec is not None:
        _install_base(
            replica,
            base=decode_value(base_rec["base"]),
            clock_floor=int(base_rec["clock_floor"]),
            frontier=decode_value(base_rec["frontier"]),
        )
    loaded = replica.load_log(decode_value(r["e"]) for r in entry_recs)
    finish = getattr(replica, "finish_restore", None)
    if finish is not None:
        complete = bool(doc.get("complete", False))
        # ``heard`` records (appended by the storage engine when the
        # vector advances between compactions) supersede the base
        # record's copy — last wins, heard is per-component monotone.
        if heard_rec is not None:
            stored_heard = heard_rec.get("h")
        else:
            stored_heard = base_rec.get("heard") if base_rec is not None else None
        finish(
            clock,
            heard=decode_value(stored_heard)
            if complete and stored_heard is not None else None,
        )
    return loaded
