"""Typed protocol effects — everything the core can ask a backend to do.

Effects are *descriptions*, not actions: the core returns them from
:meth:`repro.proto.core.ProtocolCore.handle` and a backend interprets
them — the simulator by scheduling virtual-time deliveries, the asyncio
transport by framing bytes onto TCP connections.  A backend is free to
ignore effects it models differently (the simulator ignores
:class:`Persist` because its "disk" is the live replica object; it
ignores :class:`Timer` because the experiment script owns time).

The hot delivery path reuses the module-level :data:`PERSIST_UPDATE` /
:data:`PERSIST_MESSAGE` singletons and shared tuples, so a quiescent
delivery allocates no effect objects at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union


@dataclass(frozen=True, slots=True)
class Send:
    """Transmit ``payload`` point-to-point to process ``dst``."""

    dst: int
    payload: Any


@dataclass(frozen=True, slots=True)
class Broadcast:
    """Transmit ``payload`` to every other process (Algorithm 1 line 6)."""

    payload: Any


@dataclass(frozen=True, slots=True)
class Persist:
    """The durable image changed; re-save it when convenient.

    ``reason`` says which transition dirtied the image (``"update"``,
    ``"message"``, ``"recover"``).  The effect is a *hint*, not a write
    barrier: backends may coalesce consecutive Persists (the asyncio
    node throttles snapshots), and the paper's fsync model — the clock is
    write-ahead, the log tail may lag — is what
    :func:`repro.proto.wire.replica_snapshot` encodes.
    """

    reason: str


@dataclass(frozen=True, slots=True)
class Timer:
    """Ask the backend to schedule a future :class:`~repro.proto.events.SyncTick`.

    The core never knows wall-clock or virtual durations; it only says
    *that* another ``kind`` tick would help (e.g. after recovery, to pull
    stragglers a single rejoin round missed).  The backend chooses the
    delay — or ignores the request when it already ticks periodically.
    """

    kind: str = "sync"


@dataclass(frozen=True, slots=True)
class QueryAnswered:
    """The output of a :class:`~repro.proto.events.QuerySubmitted` event.

    Always the first effect of the batch answering the query — queries
    are wait-free local computations, so the answer can never be deferred
    behind network activity.
    """

    output: Any


Effect = Union[Send, Broadcast, Persist, Timer, QueryAnswered]

#: Shared singletons for the hot paths (zero-allocation deliveries).
PERSIST_UPDATE = Persist("update")
PERSIST_MESSAGE = Persist("message")
PERSIST_RECOVER = Persist("recover")

#: The whole effect batch of a plain in-order delivery, pre-built.
ONLY_PERSIST_MESSAGE: tuple[Effect, ...] = (PERSIST_MESSAGE,)
