"""The protocol state machine: events in, effects out, no I/O anywhere.

:class:`ProtocolCore` hosts one replica algorithm (any
:class:`~repro.sim.replica.Replica` implementation — Algorithm 1's
:class:`~repro.core.universal.UniversalReplica`, the checkpointed and
garbage-collected refinements, the CRDT baselines) and translates between
the replica's hook interface and the typed event/effect vocabulary of
:mod:`repro.proto.events` / :mod:`repro.proto.effects`.

The translation adds **zero semantics**: every payload a hook returns
becomes a :class:`~repro.proto.effects.Broadcast`, every ``send_to`` the
hook queued becomes a :class:`~repro.proto.effects.Send` (in queue
order), and the replica's durable-image codec is
:mod:`repro.proto.wire` — the same codec, byte for byte, under both
backends.  That is the refactor's core claim, and the sim↔net
differential test enforces it.

Wait-freedom is preserved structurally: every method here is a
synchronous local computation.  There is nothing to await — a core
cannot express "block until a peer answers" any more than a replica
could.

Hot-path note: :meth:`deliver` is called once per message by the
simulator's fused ``run()`` loop (millions of times per run).  The
common case — an in-order payload producing no relays and no directed
sends — returns a module-level shared tuple and allocates nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Hashable

from repro.proto import wire
from repro.proto.effects import (
    ONLY_PERSIST_MESSAGE,
    PERSIST_MESSAGE,
    PERSIST_RECOVER,
    PERSIST_UPDATE,
    Broadcast,
    Effect,
    QueryAnswered,
    Send,
    Timer,
)
from repro.proto.events import (
    CrashRecovered,
    Event,
    MessageReceived,
    QuerySubmitted,
    SyncTick,
    UpdateSubmitted,
)

if TYPE_CHECKING:  # pure typing only — proto never imports the sim at runtime
    from repro.core.adt import Update
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.replica import Replica


class ProtocolCore:
    """One process's protocol state machine around a wrapped replica.

    ``replica_factory(pid, n)`` builds the algorithm; the core keeps the
    factory so :class:`~repro.proto.events.CrashRecovered` can rebuild a
    fresh instance and restore it from the durable image — the exact
    crash-recovery dance the simulator performed inline before this
    package existed.

    Backends interact through :meth:`handle` (the uniform typed entry
    point) or through the per-event convenience methods (:meth:`submit`,
    :meth:`query`, :meth:`deliver`, :meth:`sync_tick`, :meth:`recover`),
    which skip the event-object allocation on hot paths.  Both routes run
    identical code.
    """

    __slots__ = ("pid", "n", "replica", "_factory", "_registry")

    def __init__(
        self,
        pid: int,
        n: int,
        replica_factory: Callable[[int, int], "Replica"],
        *,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.pid = pid
        self.n = n
        self._factory = replica_factory
        self._registry = registry
        self.replica: "Replica" = replica_factory(pid, n)
        if registry is not None:
            self.replica.bind_metrics(registry)

    def bind_metrics(self, registry: "MetricsRegistry") -> None:
        """(Re-)home the wrapped replica's instruments on ``registry`` and
        remember it for replicas rebuilt by :meth:`recover`."""
        self._registry = registry
        self.replica.bind_metrics(registry)

    # -- the uniform event entry point --------------------------------------------

    def handle(self, event: Event) -> tuple[Effect, ...]:
        """Consume one typed event; return the effect batch it causes.

        :class:`~repro.proto.events.QuerySubmitted` answers via a leading
        :class:`~repro.proto.effects.QueryAnswered` effect (queries are
        wait-free, so the answer is always in the same batch).
        """
        if isinstance(event, MessageReceived):
            return self.deliver(event.src, event.payload)
        if isinstance(event, UpdateSubmitted):
            return self.submit(event.update)
        if isinstance(event, QuerySubmitted):
            output, effects = self.query(event.name, event.args)
            return (QueryAnswered(output), *effects)
        if isinstance(event, SyncTick):
            return self.sync_tick(event.kind)
        if isinstance(event, CrashRecovered):
            return self.recover(event.snapshot)
        raise TypeError(f"not a protocol event: {event!r}")

    # -- per-event methods (hot paths call these directly) ------------------------

    def submit(self, update: "Update") -> tuple[Effect, ...]:
        """A locally issued update: apply, then broadcast its payloads."""
        replica = self.replica
        effects: list[Effect] = [Broadcast(p) for p in replica.on_update(update)]
        self._drain(replica, effects)
        effects.append(PERSIST_UPDATE)
        return tuple(effects)

    def query(
        self, name: str, args: tuple[Hashable, ...] = ()
    ) -> tuple[Any, tuple[Effect, ...]]:
        """A locally issued query: ``(output, effects)``.

        Plain replicas produce no effects; request/reply baselines (the
        quorum object) queue directed sends even from queries, which come
        back here as :class:`~repro.proto.effects.Send`.
        """
        replica = self.replica
        output = replica.on_query(name, args)
        outbox = getattr(replica, "outbox", None)
        if not outbox:
            return output, ()
        effects: list[Effect] = []
        self._drain(replica, effects)
        return output, tuple(effects)

    def deliver(self, src: int, payload: Any) -> tuple[Effect, ...]:
        """One payload delivered by the transport (already decoded)."""
        replica = self.replica
        extra = replica.on_message(src, payload)
        outbox = getattr(replica, "outbox", None)
        if not extra and not outbox:
            return ONLY_PERSIST_MESSAGE
        effects: list[Effect] = [Broadcast(p) for p in extra or ()]
        self._drain(replica, effects)
        effects.append(PERSIST_MESSAGE)
        return tuple(effects)

    def sync_tick(self, kind: str = "sync") -> tuple[Effect, ...]:
        """A maintenance tick: anti-entropy digest or liveness heartbeat.

        Returns ``()`` when the wrapped replica does not speak the
        requested dialect — ticking any core is always safe, which is
        what lets backends run one periodic timer over heterogeneous
        replica types.
        """
        replica = self.replica
        if kind == "sync":
            sync = getattr(replica, "sync_request", None)
            if sync is None:
                return ()
            effects: list[Effect] = [Broadcast(sync())]
        elif kind == "heartbeat":
            heartbeat = getattr(replica, "heartbeat", None)
            if heartbeat is None:
                return ()
            effects = [Broadcast(heartbeat())]
        else:
            raise ValueError(f"unknown sync tick kind {kind!r}")
        self._drain(replica, effects)
        return tuple(effects)

    def recover(self, snapshot: str) -> tuple[Effect, ...]:
        """Rebuild the replica from its durable image and rejoin.

        A fresh replica comes from the factory (re-homed on the bound
        registry), the image is restored through
        :func:`repro.proto.wire.restore_replica` (clock first — the
        write-ahead rule), and the rejoin effects are emitted: an
        anti-entropy broadcast for sync-capable replicas, any directed
        sends the restore hooks queued, a :class:`Persist` (the restored
        image is the new durable truth), and a :class:`Timer` asking the
        backend for a follow-up sync round.
        """
        fresh = self._factory(self.pid, self.n)
        if self._registry is not None:
            fresh.bind_metrics(self._registry)
        wire.restore_replica(fresh, snapshot)
        self.replica = fresh
        effects: list[Effect] = []
        sync = getattr(fresh, "sync_request", None)
        if sync is not None:
            effects.append(Broadcast(sync()))
        self._drain(fresh, effects)
        effects.append(PERSIST_RECOVER)
        if sync is not None:
            effects.append(Timer("sync"))
        return tuple(effects)

    # -- durable image -------------------------------------------------------------

    def snapshot(self, *, fsync_point: int | None = None, version: int = 2) -> str:
        """The replica's current durable image (what a real deployment
        would have fsynced); ``fsync_point`` models a crash that beat the
        last log fsync.  ``version=3`` emits the digest-chained journal
        image instead of the monolithic v2 document."""
        return wire.replica_snapshot(
            self.replica, fsync_point=fsync_point, version=version
        )

    # -- introspection (read-only passthroughs) ------------------------------------

    @property
    def sync_capable(self) -> bool:
        """Does the wrapped replica speak the anti-entropy handshake?"""
        return getattr(self.replica, "sync_request", None) is not None

    @property
    def replayed_updates(self) -> int:
        """The replica's Section VII-C query replay counter (0 when the
        algorithm keeps no such accounting)."""
        return getattr(self.replica, "replayed_updates", 0)

    @property
    def log_length(self) -> int | None:
        return getattr(self.replica, "log_length", None)

    def local_state(self) -> Any:
        return self.replica.local_state()

    def witness_meta(self) -> dict[str, Any]:
        return dict(self.replica.witness_meta())

    # -- internals -----------------------------------------------------------------

    @staticmethod
    def _drain(replica: "Replica", effects: list[Effect]) -> None:
        """Translate the replica's queued directed sends into effects."""
        outbox = getattr(replica, "outbox", None)
        if not outbox:
            return
        for dst, payload in outbox:
            effects.append(Broadcast(payload) if dst is None else Send(dst, payload))
        outbox.clear()
