"""The net-smoke scenario: boot, load, crash, recover, converge.

One self-contained integration check for the asyncio backend, runnable
locally (``make net-smoke`` / ``python -m repro.net smoke``) and in CI:

1. boot a 3-replica :class:`~repro.net.harness.LocalCluster` of
   Algorithm 1 set replicas with durable images in a temp directory;
2. drive a few hundred operations through the *HTTP* front-ends
   (round-robin across replicas, inserts + deletes + reads);
3. kill one replica mid-run (sockets die, unflushed log tail lost) and
   keep operating on the survivors;
4. restart it from its on-disk image and wait for anti-entropy to
   re-converge the cluster;
5. check the converged state against the oracle.

The workload keeps its oracle exact under concurrency: every insert uses
a distinct value and every delete targets a value inserted earlier *at
the same replica* (so the delete's Lamport stamp provably exceeds the
insert's), making the final set independent of the SUC replay order.

The run emits a ``repro-net-smoke-v1`` JSON report (ops, throughput,
convergence latency, recovery details, the metrics registry) that CI
uploads as an artifact.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import time
from typing import Any

from repro.core.universal import UniversalReplica
from repro.net.harness import LocalCluster
from repro.specs import SetSpec

REPORT_FORMAT = "repro-net-smoke-v1"


async def run_smoke(
    *,
    ops: int = 200,
    replicas: int = 3,
    sync_interval: float = 0.05,
    settle_timeout: float = 15.0,
    data_dir: str | None = None,
    trace_out: str | None = None,
) -> dict[str, Any]:
    """Run the scenario; returns the report document (``ok`` = verdict).

    With ``trace_out`` the cluster runs traced and the merged multi-node
    Perfetto timeline is written there — crash and recovery included, so
    the file shows one update's spans hopping nodes around the kill.
    """
    spec = SetSpec()
    tmp = None
    if data_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-net-smoke-")
        data_dir = tmp.name
    cluster = LocalCluster(
        replicas,
        lambda pid, n: UniversalReplica(pid, n, spec),
        data_dir=data_dir,
        sync_interval=sync_interval,
        trace=trace_out is not None,
    )
    report: dict[str, Any] = {"format": REPORT_FORMAT, "ok": False,
                              "replicas": replicas, "ops_requested": ops}
    try:
        await cluster.start()
        clients = {pid: cluster.client(pid) for pid in range(replicas)}
        expected: set[int] = set()
        inserted_at: dict[int, list[int]] = {pid: [] for pid in range(replicas)}
        issued = reads = 0
        next_value = 0

        async def one_op(i: int, pids: list[int]) -> None:
            nonlocal issued, reads, next_value
            pid = pids[i % len(pids)]
            if i % 5 == 4 and inserted_at[pid]:
                victim = inserted_at[pid].pop()
                await clients[pid].update("delete", victim)
                expected.discard(victim)
            elif i % 7 == 6:
                await clients[pid].query("read")
                reads += 1
            else:
                value = next_value
                next_value += 1
                await clients[pid].update("insert", value)
                expected.add(value)
                inserted_at[pid].append(value)
            issued += 1

        # Phase 1: everyone serves traffic.  (repro.net is a sanctioned
        # wall-clock domain: real transport, real clock.)
        start = time.perf_counter()
        for i in range(ops):
            await one_op(i, list(range(replicas)))
        phase1 = time.perf_counter() - start

        # Phase 2: crash the last replica mid-run; survivors keep going.
        victim = replicas - 1
        await clients[victim].close()
        cluster.kill(victim)
        survivors = [p for p in range(replicas) if p != victim]
        for i in range(ops, ops + max(ops // 3, 20)):
            await one_op(i, survivors)

        # Phase 3: recover from the on-disk image and re-converge.
        recover_start = time.perf_counter()
        node = await cluster.restart(victim)
        await cluster.settle(timeout=settle_timeout)
        recover_time = time.perf_counter() - recover_start

        states = cluster.states()
        converged = cluster.converged()
        correct = all(s == expected for s in states.values())
        report.update(
            ok=bool(converged and correct),
            ops_issued=issued,
            reads=reads,
            ops_per_sec=round(ops / phase1, 1) if phase1 > 0 else None,
            converged=converged,
            state_size=len(expected),
            state_correct=correct,
            recovery={
                "victim": victim,
                "restored_log": node.core.log_length,
                "seconds_to_convergence": round(recover_time, 3),
            },
            metrics=cluster.registry.flat(),
        )
        if trace_out is not None:
            doc = cluster.merged_trace()
            # One-shot write after the workload is done; nothing else is
            # being served on the loop.
            with open(trace_out, "w") as fh:  # uqlint: disable=ASY304 -- post-run write
                json.dump(doc, fh)
            report["trace"] = {
                "out": trace_out,
                "events": sum(
                    1 for e in doc["traceEvents"] if e.get("ph") != "M"
                ),
                "tracers_merged": len(cluster.tracers),
            }
        return report
    except (TimeoutError, RuntimeError, OSError) as exc:
        report["error"] = f"{type(exc).__name__}: {exc}"
        return report
    finally:
        await cluster.stop()
        if tmp is not None:
            tmp.cleanup()


def main(argv: list[str] | None = None) -> int:
    """CLI entry (``python -m repro.net smoke``): 0 iff the run passed."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.net smoke",
                                     description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=200)
    parser.add_argument("--replicas", type=int, default=3)
    parser.add_argument("--sync-interval", type=float, default=0.05)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (default: stdout only)")
    parser.add_argument("--trace-out", default=None,
                        help="run traced; write the merged Perfetto trace here")
    args = parser.parse_args(argv)
    report = asyncio.run(
        run_smoke(ops=args.ops, replicas=args.replicas,
                  sync_interval=args.sync_interval, trace_out=args.trace_out)
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return 0 if report.get("ok") else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
