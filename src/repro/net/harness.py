"""A whole replicated object on localhost: n nodes, one event loop.

:class:`LocalCluster` is the asyncio twin of the simulator's
:class:`~repro.sim.cluster.Cluster` — same factory signature, same
``submit``/``query`` surface — except time is real and the network is the
kernel's loopback.  It exists for the integration tests (the sim↔net
differential test drives both through the same workload), the CI
net-smoke job and the load harness; production-shaped deployments run one
:class:`~repro.net.node.ReplicaNode` per process via ``python -m
repro.net serve``.

Crash testing mirrors the sim's model: :meth:`kill` closes the node's
sockets mid-flight without flushing its durable image (the unflushed log
tail is lost), :meth:`restart` boots a fresh node from whatever the disk
still holds — on a *new* ephemeral port, which also exercises the peers'
link-repair path.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Hashable

from repro.core.adt import Update, _canonical
from repro.net.http import HttpClient
from repro.net.node import ReplicaNode
from repro.obs.metrics import MetricsRegistry
from repro.obs.wall import WallTracer, merge_chrome_traces, wall_chrome_trace


class LocalCluster:
    """``n`` ReplicaNodes on 127.0.0.1 with ephemeral ports.

    With ``trace=True`` every node records into its own
    :class:`~repro.obs.wall.WallTracer`; :meth:`merged_trace` folds all
    of them — including tracers of nodes that have since been killed and
    restarted — into one Perfetto timeline.
    """

    def __init__(
        self,
        n: int,
        replica_factory: Callable[[int, int], Any],
        *,
        data_dir: str | None = None,
        sync_interval: float = 0.1,
        http: bool = True,
        registry: MetricsRegistry | None = None,
        trace: bool = False,
        node_kwargs: dict[str, Any] | None = None,
    ) -> None:
        self.n = n
        self._factory = replica_factory
        self.data_dir = data_dir
        self.sync_interval = sync_interval
        self.http = http
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace
        #: extra keyword arguments for every ReplicaNode the harness
        #: builds (e.g. ``{"on_corrupt": "quarantine"}``) — applied on
        #: first boot and on every restart.
        self.node_kwargs = dict(node_kwargs or {})
        #: every tracer ever built, in boot order — a killed node's
        #: pre-crash spans must survive into the merged timeline, so
        #: restart appends a new tracer instead of replacing the old one.
        self.tracers: list[WallTracer] = []
        self.nodes: dict[int, ReplicaNode] = {}
        self.dead: set[int] = set()

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> None:
        """Boot every node and connect the full mesh."""
        for pid in range(self.n):
            self.nodes[pid] = self._build_node(pid)
        for node in self.nodes.values():
            await node.listen(http_port=0 if self.http else None)
        peers = self._address_book()
        for node in self.nodes.values():
            node.set_peers(peers)
        for node in self.nodes.values():
            await node.start()

    async def stop(self) -> None:
        for pid, node in self.nodes.items():
            if pid not in self.dead:
                await node.stop()
        await asyncio.sleep(0)

    def kill(self, pid: int) -> None:
        """Crash node ``pid``: sockets die mid-flight, no final flush."""
        self.nodes[pid].kill()
        self.dead.add(pid)

    async def restart(self, pid: int) -> ReplicaNode:
        """Boot a fresh node for ``pid`` from its on-disk image (if any),
        re-announce its new ephemeral address to the survivors."""
        node = self._build_node(pid)
        self.nodes[pid] = node
        self.dead.discard(pid)
        await node.listen(http_port=0 if self.http else None)
        peers = self._address_book()
        for n in self.nodes.values():
            n.set_peers(peers)
        await node.start()
        return node

    # -- application surface ---------------------------------------------------------

    def submit(self, pid: int, update: Update) -> dict[str, Any]:
        """Issue ``update`` at node ``pid``; returns witness metadata."""
        return self._live(pid).submit(update)

    def query(self, pid: int, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        return self._live(pid).query(name, args)

    def client(self, pid: int) -> HttpClient:
        """A keep-alive HTTP client bound to node ``pid``'s front-end."""
        node = self.nodes[pid]
        if node.http_port is None:
            raise RuntimeError("cluster started with http=False")
        return HttpClient(node.host, node.http_port)

    # -- convergence ------------------------------------------------------------------

    def alive(self) -> list[int]:
        return [pid for pid in range(self.n) if pid not in self.dead]

    def states(self) -> dict[int, Any]:
        return {pid: self.nodes[pid].local_state() for pid in self.alive()}

    def converged(self) -> bool:
        """All live nodes report canonically equal local state."""
        return len({_canonical(s) for s in self.states().values()}) <= 1

    async def settle(self, timeout: float = 10.0) -> None:
        """Drive anti-entropy until every live node agrees (twice in a
        row — one agreement can be a coincidence mid-gossip).

        Raises ``TimeoutError`` with the divergent states on expiry.
        """
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        agreed_once = False
        while loop.time() < deadline:
            if self.converged():
                if agreed_once:
                    return
                agreed_once = True
            else:
                agreed_once = False
                for pid in self.alive():
                    self.nodes[pid].sync_now()
            await asyncio.sleep(self.sync_interval / 2)
        raise TimeoutError(f"no convergence within {timeout}s: {self.states()!r}")

    # -- tracing ----------------------------------------------------------------------

    def merged_trace(self) -> dict[str, Any]:
        """All nodes' trace records as one Perfetto timeline document."""
        if not self.trace:
            raise RuntimeError("cluster started with trace=False")
        return merge_chrome_traces(
            wall_chrome_trace(t, trace_name=f"repro net node (boot {i})")
            for i, t in enumerate(self.tracers)
        )

    # -- internals ----------------------------------------------------------------------

    def _build_node(self, pid: int) -> ReplicaNode:
        tracer = None
        if self.trace:
            tracer = WallTracer()
            self.tracers.append(tracer)
        return ReplicaNode(
            pid, self.n, self._factory,
            data_dir=self.data_dir,
            sync_interval=self.sync_interval,
            registry=self.registry,
            **({"tracer": tracer} if tracer is not None else {}),
            **self.node_kwargs,
        )

    def _address_book(self) -> dict[int, tuple[str, int]]:
        return {
            pid: (node.host, node.peer_port)
            for pid, node in self.nodes.items()
            if node.peer_port is not None and pid not in self.dead
        }

    def _live(self, pid: int) -> ReplicaNode:
        if pid in self.dead:
            raise RuntimeError(f"node {pid} is dead")
        return self.nodes[pid]
