"""One replica process over real sockets: the asyncio effect interpreter.

:class:`ReplicaNode` is the network twin of the simulator's
:class:`~repro.sim.cluster.Cluster` — the same
:class:`~repro.proto.core.ProtocolCore` drives the same replica
algorithms, and the node's only job is to interpret the returned effects:

* :class:`~repro.proto.effects.Broadcast` / ``Send`` — frame the payload
  (:mod:`repro.net.framing`) onto persistent TCP links, one outbound
  connection per peer.  Link loss is tolerated, not hidden: a frame to a
  dead peer is dropped, exactly the asynchronous-network model the paper
  assumes, and the periodic anti-entropy tick repairs the divergence.
* :class:`~repro.proto.effects.Persist` — mark the durable image dirty; a
  background task appends the changed cells to the node's journal
  (:class:`~repro.storage.engine.JournalStore` — write-ahead clock cell
  first, then new log entries, each frame CRC'd and digest-chained) on a
  short throttle.  :meth:`kill` skips the final flush — a crash loses the
  unflushed tail, which is precisely the ``fsync_point`` recovery model,
  and the journal's torn-tail truncation makes it physically true.
  Legacy v1/v2 JSON snapshot images are still read (and migrated to a
  journal) at boot; a corrupt image raises a typed
  :class:`~repro.storage.journal.CorruptImageError` — or, with
  ``on_corrupt="quarantine"``, sets the file aside and rejoins empty via
  anti-entropy, surfacing the damage on ``/healthz``.
* :class:`~repro.proto.effects.Timer` — schedule a one-shot follow-up
  :meth:`~repro.proto.core.ProtocolCore.sync_tick`.

Everything runs on one event loop and every core call is synchronous, so
no lock ever guards replica state — wait-freedom by construction, same as
the sim.  :meth:`submit` and :meth:`query` never await: a burst of
operations issued in one event-loop turn interleaves with no delivery,
which is what makes the sim↔net differential test's Lamport stamps
deterministic.

Observability (all optional, all off the hot path when disabled): a
:class:`~repro.obs.wall.WallTracer` records each traced update's local
and remote apply spans; trace contexts propagate as MSG-frame headers
(:func:`repro.net.framing.with_headers`) so one client update's spans
link across every node; convergence lag, peer RTT, outbox depth and
dirty-flush latency land in the shared metrics registry.  An untraced
node emits byte-identical frames to the pre-observability wire format.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Any, Callable, Hashable

from repro.net.framing import (
    FrameError,
    read_frame,
    split_headers,
    with_headers,
    write_frame,
)
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.obs.wall import TraceContext, wall_now
from repro.proto.core import ProtocolCore
from repro.proto.effects import (
    Broadcast,
    Effect,
    Persist,
    QueryAnswered,
    Send,
    Timer,
)
from repro.proto.wire import (
    decode_trace_headers,
    encode_trace_headers,
    encode_ts_key,
)
from repro.storage import CorruptImageError, JournalStore, fsync_dir

_LOG = get_logger("repro.net.node")

#: frame kinds on the peer wire (the body of every peer frame is a tuple).
HELLO = "hello"
MSG = "msg"
#: RTT probes, piggybacked on the anti-entropy cadence.  A PING travels
#: on the sender's outbound link; the PONG answers over the *receiver's*
#: outbound link (outbound connections are write-only), so the measured
#: RTT covers the same two links an update-and-its-sync-response pair
#: crosses.  Nodes that predate these kinds silently ignore them.
PING = "ping"
PONG = "pong"

#: Convergence-lag histogram buckets: from sub-millisecond same-burst
#: applies up to multi-second partition repairs (seconds).
CONVERGENCE_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)
#: Bound on the per-node recent-trace index (timestamp -> trace context).
#: Oldest entries fall off first; an evicted trace merely stops being
#: re-announced on sync responses — already-recorded spans are untouched.
TRACE_RECENT_CAP = 512
#: How many of the most recent traces ride each directed send.  Directed
#: sends are the anti-entropy/state-transfer path, which is how a trace
#: context reaches a node that was down when the update was broadcast.
TRACE_SEND_CAP = 64

#: The effect contract (checked by uqlint EFX401): this backend dispatches
#: on every member of the closed ``repro.proto.effects.Effect`` union.
HANDLED_EFFECTS = (Broadcast, Send, Timer, Persist)
#: ``QueryAnswered`` never reaches the interpreter loop with work to do:
#: queries are answered synchronously inside :meth:`ReplicaNode.query`
#: (the output is returned before the effects are applied).
IGNORED_EFFECTS = (QueryAnswered,)


class NodeStoppedError(RuntimeError):
    """An operation was invoked on a stopped (killed) node."""


class ReplicaNode:
    """One process of a replicated object, reachable over TCP.

    Lifecycle::

        node = ReplicaNode(pid, n, factory, data_dir=...)
        await node.listen()            # bind peer + HTTP sockets
        node.set_peers({...})          # pid -> (host, peer_port)
        await node.start()             # connect, recover from disk, tick

    ``submit``/``query`` are the application surface (the HTTP front-end
    in :mod:`repro.net.http` calls them); both are synchronous and
    wait-free.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        replica_factory: Callable[[int, int], Any],
        *,
        host: str = "127.0.0.1",
        data_dir: str | None = None,
        sync_interval: float = 0.25,
        flush_interval: float = 0.05,
        on_corrupt: str = "raise",
        registry: MetricsRegistry | None = None,
        tracer: NullTracer = NULL_TRACER,
    ) -> None:
        if on_corrupt not in ("raise", "quarantine"):
            raise ValueError(
                f"on_corrupt must be 'raise' or 'quarantine', got {on_corrupt!r}"
            )
        self.pid = pid
        self.n = n
        self.host = host
        self.registry = registry if registry is not None else MetricsRegistry()
        self.core = ProtocolCore(pid, n, replica_factory, registry=self.registry)
        self.data_dir = data_dir
        self.sync_interval = sync_interval
        self.flush_interval = flush_interval
        self.tracer = tracer
        self.peers: dict[int, tuple[str, int]] = {}
        self.peer_port: int | None = None
        self.http_port: int | None = None
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._servers: list[asyncio.base_events.Server] = []
        self._tasks: set[asyncio.Task] = set()
        #: exceptions raised by background tasks (sync loop, flusher,
        #: one-shot ticks).  asyncio drops these on the floor unless a
        #: done-callback collects them; a crashed sync loop that nobody
        #: notices is a replica that silently stops converging.
        self.task_errors: list[BaseException] = []
        #: durable-image policy and state: ``on_corrupt`` picks between
        #: failing the boot (``"raise"``, the default — operators decide)
        #: and quarantining the damaged file to boot empty and rejoin via
        #: anti-entropy; either way the error lands on
        #: :attr:`corrupt_image` and ``/healthz``.
        self.on_corrupt = on_corrupt
        self.corrupt_image: CorruptImageError | None = None
        self._store: JournalStore | None = None
        self._dirty = False
        self._dirty_since: float | None = None
        self._stopped = False
        self._log = _LOG.bind(pid=pid)
        #: protocol timestamp -> (trace_id, submit wall time), insertion
        #: ordered and bounded (:data:`TRACE_RECENT_CAP`).  Doubles as the
        #: "visibility already recorded here" set and as the payload of
        #: sync-response trace headers.
        self._trace_recent: dict[tuple[int, int], tuple[str, float]] = {}
        #: trace headers to attach to the frames the *current* effect
        #: batch produces (set around traced submit/deliver calls only).
        self._out_traces: dict[tuple[int, int], tuple[str, float]] | None = None
        self._ping_seq = 0
        self._ping_pending: dict[int, tuple[int, float]] = {}
        self._trace_seq = 0
        m = self.registry
        self._sent = m.counter(
            "repro_net_frames_sent_total", help="peer frames queued on TCP links",
        ).labels()
        self._received = m.counter(
            "repro_net_frames_received_total", help="peer frames delivered",
        ).labels()
        self._drops = m.counter(
            "repro_net_frames_dropped_total",
            help="frames dropped for lack of a live link (async-network loss)",
        ).labels()
        self._flushes = m.counter(
            "repro_net_snapshot_flushes_total", help="durable images written",
        ).labels()
        self._journal_records = m.counter(
            "repro_net_journal_records_total",
            help="records appended to the durable journal",
        ).labels()
        self._journal_compactions = m.counter(
            "repro_net_journal_compactions_total",
            help="journal generations rewritten (GC-floor compaction)",
        ).labels()
        self._task_errors = m.counter(
            "repro_net_task_errors_total",
            help="background tasks that died with a non-cancellation error",
        ).labels()
        self._conv_lag = m.histogram(
            "repro_net_convergence_lag_seconds",
            help="wall time from front-end submit to first local visibility",
            label_names=("pid",),
            buckets=CONVERGENCE_BUCKETS,
        ).labels(pid=str(pid))
        self._rtt_gauge = m.gauge(
            "repro_net_peer_rtt_seconds",
            help="last measured peer-link round-trip time (sync-tick pings)",
            label_names=("pid", "peer"),
        )
        self._outbox_gauge = m.gauge(
            "repro_net_outbox_depth_bytes",
            help="bytes queued on outbound peer links (transport write buffers)",
            label_names=("pid",),
        ).labels(pid=str(pid))
        self._flush_latency = m.histogram(
            "repro_net_dirty_flush_latency_seconds",
            help="time from first unflushed Persist to the snapshot hitting disk",
            label_names=("pid",),
            buckets=CONVERGENCE_BUCKETS,
        ).labels(pid=str(pid))

    # -- lifecycle -----------------------------------------------------------------

    @property
    def snapshot_path(self) -> str | None:
        """The *legacy* v1/v2 JSON image path — still read at boot (and
        migrated into the journal), never written any more."""
        if self.data_dir is None:
            return None
        return os.path.join(self.data_dir, f"replica-{self.pid}.json")

    @property
    def journal_path(self) -> str | None:
        if self.data_dir is None:
            return None
        return os.path.join(self.data_dir, f"replica-{self.pid}.journal")

    async def listen(self, *, peer_port: int = 0, http_port: int | None = 0) -> None:
        """Bind the peer socket (and the HTTP front-end unless disabled)."""
        server = await asyncio.start_server(
            self._serve_peer, self.host, peer_port
        )
        self._servers.append(server)
        self.peer_port = server.sockets[0].getsockname()[1]
        if http_port is not None:
            from repro.net.http import serve_http

            http_server = await serve_http(self, self.host, http_port)
            self._servers.append(http_server)
            self.http_port = http_server.sockets[0].getsockname()[1]

    def set_peers(self, peers: dict[int, tuple[str, int]]) -> None:
        """Install the peer address book (``pid -> (host, peer_port)``)."""
        self.peers = {p: addr for p, addr in peers.items() if p != self.pid}

    async def start(self) -> None:
        """Connect to peers, recover from disk if an image exists, start
        the periodic anti-entropy tick and the journal flusher."""
        await self.connect()
        if self.data_dir is not None:
            # Boot-time one-shot disk work: start() runs before any
            # traffic is served, so nothing else is on the loop to stall.
            os.makedirs(self.data_dir, exist_ok=True)
            self._recover_from_disk()
        self._spawn(self._sync_loop())
        if self.data_dir is not None:
            self._spawn(self._flush_loop())

    def _recover_from_disk(self) -> None:
        """Open the journal and recover whatever the disk holds.

        Precedence: an existing journal wins; otherwise a legacy v1/v2
        JSON snapshot is read and immediately migrated into a fresh
        journal.  Every failure mode — torn beyond repair, bit-flipped
        frames, undecodable JSON, a restore that rejects the image — is
        normalised to :class:`~repro.storage.journal.CorruptImageError`
        and handled per :attr:`on_corrupt`.
        """
        assert self.journal_path is not None
        try:
            self._store = JournalStore(self.journal_path, self.pid)
            image = self._store.open()
            source = self.journal_path
            if image is None:
                image, source = self._read_legacy_snapshot()
        except CorruptImageError as exc:
            self._quarantine_or_raise(exc)
            return
        if image is None:
            return
        try:
            self._apply_effects(self.core.recover(image))
        except ValueError as exc:
            # A parseable image the codec still rejects (digest mismatch,
            # foreign pid, unknown format): same corruption policy.
            self._quarantine_or_raise(CorruptImageError(source, 0, str(exc)))
            return
        if source != self.journal_path:
            # Migrated from a legacy JSON image: seed the journal now so
            # the next boot (and every flush) is journal-native.  The
            # legacy file is left in place untouched — the journal takes
            # precedence from here on.
            self._flush_snapshot()

    def _read_legacy_snapshot(self) -> tuple[str | None, str]:
        """The v1/v2 JSON image, if one exists (pre-journal data dirs)."""
        path = self.snapshot_path
        assert path is not None
        if not os.path.exists(path):
            return None, path
        with open(path, encoding="utf-8") as fh:
            return fh.read(), path

    def _quarantine_or_raise(self, exc: CorruptImageError) -> None:
        """Apply the :attr:`on_corrupt` policy to a damaged image."""
        self.corrupt_image = exc
        self._log.error(
            "corrupt_image", path=exc.path, offset=exc.offset, error=exc.reason
        )
        if self.on_corrupt == "raise":
            if self._store is not None:
                self._store.close()
                self._store = None
            raise exc
        # Quarantine: set the damaged file aside (keeping the evidence),
        # reopen a fresh journal and rejoin empty — anti-entropy pulls
        # back everything the cluster still has.
        if self._store is not None:
            self._store.close()
            self._store = None
        if os.path.exists(exc.path):
            os.replace(exc.path, exc.path + ".corrupt")
            fsync_dir(os.path.dirname(exc.path) or ".")
        assert self.journal_path is not None
        self._store = JournalStore(self.journal_path, self.pid)
        self._store.open()

    async def connect(self) -> None:
        """Dial every peer not currently connected (best-effort)."""
        for dst in self.peers:
            if dst not in self._writers:
                await self._dial(dst)

    async def stop(self) -> None:
        """Graceful shutdown: flush the durable image, then close."""
        if self.data_dir is not None and not self._stopped:
            self._flush_snapshot()
        self.kill()
        await asyncio.sleep(0)  # let cancelled tasks unwind

    def kill(self) -> None:
        """Abrupt crash: close everything, *without* a final flush — the
        unflushed tail of the log is lost, as a real power cut loses it."""
        self._stopped = True
        if self._store is not None:
            # Nothing is buffered between flushes (every sync() ends in
            # flush+fsync), so closing the fd loses exactly the updates
            # that were never appended — the crash model's lost tail.
            self._store.close()
            self._store = None
        for task in self._tasks:
            task.cancel()
        self._tasks.clear()
        for server in self._servers:
            server.close()
        self._servers.clear()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()

    # -- application surface (wait-free, synchronous) -------------------------------

    def submit(self, update: Any, *, ctx: TraceContext | None = None) -> dict[str, Any]:
        """Issue one update locally; returns the replica's witness metadata
        (timestamp etc.).  Never awaits.

        With a :class:`~repro.obs.wall.TraceContext` (minted by the HTTP
        front-end), the update's trace rides every outgoing frame the
        submit produces, a ``update.local_apply`` span is recorded, and
        this node's convergence lag (submit wall time to local
        visibility) is observed.  Without one, the wire bytes are
        identical to an untraced build — the sim↔net differential test
        depends on that.
        """
        self._check_running()
        if ctx is None:
            self._apply_effects(self.core.submit(update))
            return self.core.witness_meta()
        t_start = wall_now()
        effects = self.core.submit(update)
        meta = self.core.witness_meta()
        ts = self._timestamp_key(meta.get("timestamp"))
        if ts is not None:
            self._remember_trace(ts, ctx.trace_id, ctx.t0)
            self._out_traces = {ts: (ctx.trace_id, ctx.t0)}
        try:
            self._apply_effects(effects)
        finally:
            self._out_traces = None
        now = wall_now()
        lag = max(0.0, now - ctx.t0)
        self._conv_lag.observe(lag)
        if self.tracer.enabled:
            attrs: dict[str, Any] = {"trace": ctx.trace_id}
            if ts is not None:
                attrs["ts"] = encode_ts_key(ts)
            self.tracer.span(
                "update.local_apply", t_start, now, pid=self.pid, attrs=attrs
            )
            self.tracer.event(
                "update.visible", now, pid=self.pid,
                attrs={**attrs, "lag_s": round(lag, 6)},
            )
        return meta

    def query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        """Answer one query from local state.  Never awaits."""
        self._check_running()
        output, effects = self.core.query(name, args)
        if effects:
            self._apply_effects(effects)
        return output

    def local_state(self) -> Any:
        return self.core.local_state()

    def witness_meta(self) -> dict[str, Any]:
        return self.core.witness_meta()

    def sync_now(self) -> None:
        """Force one anti-entropy round out of band (tests, admin)."""
        self._check_running()
        self._apply_effects(self.core.sync_tick())

    def mint_trace_id(self) -> str:
        """A fresh trace id, unique per (node, incarnation): ``t<pid>-<seq>``.

        Deterministic — no randomness, so two runs of the same scripted
        scenario mint the same ids, and a trace id alone names the
        front-end that accepted the update.
        """
        self._trace_seq += 1
        return f"t{self.pid:x}-{self._trace_seq:x}"

    # -- the effect interpreter ------------------------------------------------------

    def _apply_effects(self, effects: tuple[Effect, ...]) -> None:
        for eff in effects:
            cls = eff.__class__
            if cls is Broadcast:
                for dst in self.peers:
                    self._ship(dst, eff.payload, self._out_traces)
            elif cls is Send:
                self._ship(eff.dst, eff.payload, self._send_traces())
            elif cls is Timer:
                self._spawn(self._one_shot_tick(eff.kind))
            elif cls is Persist:
                if not self._dirty:
                    self._dirty_since = time.monotonic()
                self._dirty = True  # the flusher owns the disk
            # QueryAnswered: already consumed synchronously by query().

    def _ship(
        self,
        dst: int,
        payload: Any,
        traces: dict[tuple[int, int], tuple[str, float]] | None = None,
    ) -> None:
        writer = self._writers.get(dst)
        if writer is not None and writer.is_closing():
            self._writers.pop(dst, None)  # stale link (peer died/moved)
            writer = None
        if writer is None:
            self._drops.inc()
            self._spawn(self._dial(dst))  # repair the link for next time
            return
        frame: tuple[Any, ...] = (MSG, self.pid, payload)
        if traces:
            frame = with_headers(frame, encode_trace_headers(traces))
        try:
            write_frame(writer, frame)
            self._sent.inc()
        except (ConnectionError, RuntimeError):
            self._drops.inc()
            self._writers.pop(dst, None)

    # -- trace propagation -----------------------------------------------------------

    @staticmethod
    def _timestamp_key(raw: Any) -> tuple[int, int] | None:
        """Normalize witness-metadata timestamps to a ``(clock, pid)`` key
        (CRDT baselines expose no Lamport timestamp — their updates simply
        go untraced on the wire)."""
        if isinstance(raw, (tuple, list)) and len(raw) == 2:
            try:
                return int(raw[0]), int(raw[1])
            except (TypeError, ValueError):
                return None
        return None

    def _remember_trace(self, ts: tuple[int, int], trace_id: str, t0: float) -> None:
        self._trace_recent.pop(ts, None)  # refresh recency on re-announce
        self._trace_recent[ts] = (trace_id, t0)
        while len(self._trace_recent) > TRACE_RECENT_CAP:
            del self._trace_recent[next(iter(self._trace_recent))]

    def _send_traces(self) -> dict[tuple[int, int], tuple[str, float]] | None:
        """Trace headers for a directed send: the in-flight batch's traces
        plus the tail of the recent index.  Directed sends are the sync
        response / state transfer path — attaching recently seen traces is
        what lets a node that was down during the broadcast still join an
        update's span tree when anti-entropy repairs it."""
        out = dict(self._out_traces) if self._out_traces else {}
        if self._trace_recent:
            recent = list(self._trace_recent.items())[-TRACE_SEND_CAP:]
            for ts, ctx in recent:
                out.setdefault(ts, ctx)
        return out or None

    # -- peer links ------------------------------------------------------------------

    async def _dial(self, dst: int) -> None:
        if self._stopped or dst in self._writers:
            return
        addr = self.peers.get(dst)
        if addr is None:
            return
        try:
            _, writer = await asyncio.open_connection(*addr)
        except OSError:
            return  # peer down; anti-entropy retries via _ship
        if dst in self._writers or self._stopped:  # lost the race
            writer.close()
            return
        write_frame(writer, (HELLO, self.pid))
        self._writers[dst] = writer

    async def _serve_peer(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._stopped:
                try:
                    frame = await read_frame(reader)
                except FrameError:
                    break
                if frame is None or self._stopped:
                    # A frame that raced a kill() is dropped, same as the
                    # crash model drops messages to a crashed replica.
                    break
                kind = frame[0]
                if kind == MSG:
                    src = int(frame[1])
                    payload, headers = split_headers(frame[2:])
                    self._received.inc()
                    self._deliver_traced(src, payload, headers)
                elif kind == PING:
                    # Answer over our outbound link to the pinger (this
                    # inbound stream's writer belongs to *their* dialer).
                    self._ship_raw(int(frame[1]), (PONG, self.pid, frame[2]))
                elif kind == PONG:
                    self._note_pong(int(frame[1]), frame[2])
                # HELLO (or anything unknown) needs no reply.
        finally:
            writer.close()

    def _deliver_traced(self, src: int, payload: Any, headers: dict[str, Any]) -> None:
        """Deliver one peer payload, honouring any trace headers it carries.

        Traces on the frame propagate onto whatever frames the delivery
        itself produces (relays, sync responses).  For each trace this
        node has not yet seen, the delivery is recorded as that trace's
        ``update.remote_apply`` span and the node's convergence lag —
        wall time since the front-end stamped ``t0`` — is observed.
        """
        traces = decode_trace_headers(headers) if headers else {}
        if not traces:
            self._apply_effects(self.core.deliver(src, payload))
            return
        fresh = {ts: tc for ts, tc in traces.items() if ts not in self._trace_recent}
        t_start = wall_now()
        self._out_traces = traces
        try:
            self._apply_effects(self.core.deliver(src, payload))
        finally:
            self._out_traces = None
        now = wall_now()
        for ts, (trace_id, t0) in fresh.items():
            self._remember_trace(ts, trace_id, t0)
            lag = max(0.0, now - t0)
            self._conv_lag.observe(lag)
            if self.tracer.enabled:
                attrs = {"trace": trace_id, "ts": encode_ts_key(ts), "src": src}
                self.tracer.span(
                    "update.remote_apply", t_start, now, pid=self.pid, attrs=attrs
                )
                self.tracer.event(
                    "update.visible", now, pid=self.pid,
                    attrs={**attrs, "lag_s": round(lag, 6)},
                )

    # -- peer-link RTT probes ----------------------------------------------------------

    def _ship_raw(self, dst: int, frame: tuple[Any, ...]) -> None:
        """Best-effort frame on the outbound link; no drop accounting, no
        redial — probes must not perturb the link-repair machinery."""
        writer = self._writers.get(dst)
        if writer is None or writer.is_closing():
            return
        try:
            write_frame(writer, frame)
        except (ConnectionError, RuntimeError):
            self._writers.pop(dst, None)

    def _ping_peers(self) -> None:
        for dst in list(self._writers):
            self._ping_seq += 1
            self._ping_pending[dst] = (self._ping_seq, time.monotonic())
            self._ship_raw(dst, (PING, self.pid, self._ping_seq))

    def _note_pong(self, src: int, seq: Any) -> None:
        pending = self._ping_pending.get(src)
        if pending is None or pending[0] != seq:
            return  # stale or duplicated echo
        del self._ping_pending[src]
        rtt = time.monotonic() - pending[1]
        self._rtt_gauge.labels(pid=str(self.pid), peer=str(src)).set(rtt)

    # -- periodic work -----------------------------------------------------------------

    async def _sync_loop(self) -> None:
        while not self._stopped:
            await asyncio.sleep(self.sync_interval)
            if self.core.sync_capable:
                self._apply_effects(self.core.sync_tick())
            self._ping_peers()
            self._outbox_gauge.set(
                sum(
                    w.transport.get_write_buffer_size()
                    for w in self._writers.values()
                    if not w.is_closing()
                )
            )

    async def _one_shot_tick(self, kind: str) -> None:
        await asyncio.sleep(self.sync_interval / 2)
        if not self._stopped:
            self._apply_effects(self.core.sync_tick(kind))

    async def _flush_loop(self) -> None:
        while not self._stopped:
            await asyncio.sleep(self.flush_interval)
            if self._dirty:
                self._flush_snapshot()

    def _flush_snapshot(self) -> None:
        """Flush the durable image: append the changed journal cells.

        Unlike the old rewrite-the-whole-JSON-image flusher, cost is flat
        in the log length — the clock cell (if it advanced) plus the
        entries that arrived since the last flush; compaction (a full
        atomic rewrite) only happens when the GC floor moved.
        """
        if self.journal_path is None:
            return
        if self._store is None:
            # Flush before start() (stop() on a never-started node):
            # create the journal on demand.
            os.makedirs(self.data_dir, exist_ok=True)  # type: ignore[arg-type]
            self._store = JournalStore(self.journal_path, self.pid)
            self._store.open()
        stats = self._store.sync(self.core.replica)
        self._journal_records.inc(stats["appended"])
        if stats["compacted"]:
            self._journal_compactions.inc()
        self._dirty = False
        if self._dirty_since is not None:
            self._flush_latency.observe(time.monotonic() - self._dirty_since)
            self._dirty_since = None
        self._flushes.inc()

    def storage_info(self) -> dict[str, Any]:
        """The ``/healthz`` storage section: backend, journal stats, and
        the last corrupt-image error (if any)."""
        info: dict[str, Any] = {
            "backend": "journal" if self.data_dir is not None else "none",
            "corrupt_image": None if self.corrupt_image is None else {
                "path": self.corrupt_image.path,
                "offset": self.corrupt_image.offset,
                "reason": self.corrupt_image.reason,
            },
        }
        if self._store is not None:
            info["journal"] = self._store.info()
        return info

    # -- internals ----------------------------------------------------------------------

    def _spawn(self, coro) -> None:
        if self._stopped:
            coro.close()
            return
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._task_done)

    def _task_done(self, task: asyncio.Task) -> None:
        """Done-callback for every background task: surface exceptions.

        Without this, a task that dies (sync loop, flusher, one-shot
        tick) vanishes silently — asyncio only mentions never-retrieved
        exceptions at GC time, on stderr, long after the damage.  The
        error is logged, counted, and kept on :attr:`task_errors` so
        tests and operators can assert on it.
        """
        self._tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is None:
            return
        self.task_errors.append(exc)
        self._task_errors.inc()
        self._log.error("task_crashed", task=task.get_name(), error=exc)

    def _check_running(self) -> None:
        if self._stopped:
            raise NodeStoppedError(f"node {self.pid} has been stopped")
