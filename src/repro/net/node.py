"""One replica process over real sockets: the asyncio effect interpreter.

:class:`ReplicaNode` is the network twin of the simulator's
:class:`~repro.sim.cluster.Cluster` — the same
:class:`~repro.proto.core.ProtocolCore` drives the same replica
algorithms, and the node's only job is to interpret the returned effects:

* :class:`~repro.proto.effects.Broadcast` / ``Send`` — frame the payload
  (:mod:`repro.net.framing`) onto persistent TCP links, one outbound
  connection per peer.  Link loss is tolerated, not hidden: a frame to a
  dead peer is dropped, exactly the asynchronous-network model the paper
  assumes, and the periodic anti-entropy tick repairs the divergence.
* :class:`~repro.proto.effects.Persist` — mark the durable image dirty; a
  background task rewrites the snapshot file (atomic tmp+rename) on a
  short throttle.  :meth:`kill` skips the final flush — a crash loses the
  unflushed tail, which is precisely the ``fsync_point`` recovery model.
* :class:`~repro.proto.effects.Timer` — schedule a one-shot follow-up
  :meth:`~repro.proto.core.ProtocolCore.sync_tick`.

Everything runs on one event loop and every core call is synchronous, so
no lock ever guards replica state — wait-freedom by construction, same as
the sim.  :meth:`submit` and :meth:`query` never await: a burst of
operations issued in one event-loop turn interleaves with no delivery,
which is what makes the sim↔net differential test's Lamport stamps
deterministic.
"""

from __future__ import annotations

import asyncio
import logging
import os
from typing import Any, Callable, Hashable

from repro.net.framing import FrameError, read_frame, write_frame
from repro.obs.metrics import MetricsRegistry
from repro.proto.core import ProtocolCore
from repro.proto.effects import (
    Broadcast,
    Effect,
    Persist,
    QueryAnswered,
    Send,
    Timer,
)

_LOG = logging.getLogger("repro.net.node")

#: frame kinds on the peer wire (the body of every peer frame is a tuple).
HELLO = "hello"
MSG = "msg"

#: The effect contract (checked by uqlint EFX401): this backend dispatches
#: on every member of the closed ``repro.proto.effects.Effect`` union.
HANDLED_EFFECTS = (Broadcast, Send, Timer, Persist)
#: ``QueryAnswered`` never reaches the interpreter loop with work to do:
#: queries are answered synchronously inside :meth:`ReplicaNode.query`
#: (the output is returned before the effects are applied).
IGNORED_EFFECTS = (QueryAnswered,)


class NodeStoppedError(RuntimeError):
    """An operation was invoked on a stopped (killed) node."""


class ReplicaNode:
    """One process of a replicated object, reachable over TCP.

    Lifecycle::

        node = ReplicaNode(pid, n, factory, data_dir=...)
        await node.listen()            # bind peer + HTTP sockets
        node.set_peers({...})          # pid -> (host, peer_port)
        await node.start()             # connect, recover from disk, tick

    ``submit``/``query`` are the application surface (the HTTP front-end
    in :mod:`repro.net.http` calls them); both are synchronous and
    wait-free.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        replica_factory: Callable[[int, int], Any],
        *,
        host: str = "127.0.0.1",
        data_dir: str | None = None,
        sync_interval: float = 0.25,
        flush_interval: float = 0.05,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.pid = pid
        self.n = n
        self.host = host
        self.registry = registry if registry is not None else MetricsRegistry()
        self.core = ProtocolCore(pid, n, replica_factory, registry=self.registry)
        self.data_dir = data_dir
        self.sync_interval = sync_interval
        self.flush_interval = flush_interval
        self.peers: dict[int, tuple[str, int]] = {}
        self.peer_port: int | None = None
        self.http_port: int | None = None
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._servers: list[asyncio.base_events.Server] = []
        self._tasks: set[asyncio.Task] = set()
        #: exceptions raised by background tasks (sync loop, flusher,
        #: one-shot ticks).  asyncio drops these on the floor unless a
        #: done-callback collects them; a crashed sync loop that nobody
        #: notices is a replica that silently stops converging.
        self.task_errors: list[BaseException] = []
        self._dirty = False
        self._stopped = False
        m = self.registry
        self._sent = m.counter(
            "repro_net_frames_sent_total", help="peer frames queued on TCP links",
        ).labels()
        self._received = m.counter(
            "repro_net_frames_received_total", help="peer frames delivered",
        ).labels()
        self._drops = m.counter(
            "repro_net_frames_dropped_total",
            help="frames dropped for lack of a live link (async-network loss)",
        ).labels()
        self._flushes = m.counter(
            "repro_net_snapshot_flushes_total", help="durable images written",
        ).labels()
        self._task_errors = m.counter(
            "repro_net_task_errors_total",
            help="background tasks that died with a non-cancellation error",
        ).labels()

    # -- lifecycle -----------------------------------------------------------------

    @property
    def snapshot_path(self) -> str | None:
        if self.data_dir is None:
            return None
        return os.path.join(self.data_dir, f"replica-{self.pid}.json")

    async def listen(self, *, peer_port: int = 0, http_port: int | None = 0) -> None:
        """Bind the peer socket (and the HTTP front-end unless disabled)."""
        server = await asyncio.start_server(
            self._serve_peer, self.host, peer_port
        )
        self._servers.append(server)
        self.peer_port = server.sockets[0].getsockname()[1]
        if http_port is not None:
            from repro.net.http import serve_http

            http_server = await serve_http(self, self.host, http_port)
            self._servers.append(http_server)
            self.http_port = http_server.sockets[0].getsockname()[1]

    def set_peers(self, peers: dict[int, tuple[str, int]]) -> None:
        """Install the peer address book (``pid -> (host, peer_port)``)."""
        self.peers = {p: addr for p, addr in peers.items() if p != self.pid}

    async def start(self) -> None:
        """Connect to peers, recover from disk if an image exists, start
        the periodic anti-entropy tick and the snapshot flusher."""
        await self.connect()
        path = self.snapshot_path
        if path is not None and os.path.exists(path):
            # Boot-time one-shot read: start() runs before any traffic is
            # served, so nothing else is on the loop to stall yet.
            with open(path) as fh:  # uqlint: disable=ASY304 -- boot-time read
                self._apply_effects(self.core.recover(fh.read()))
        self._spawn(self._sync_loop())
        if self.data_dir is not None:
            os.makedirs(self.data_dir, exist_ok=True)
            self._spawn(self._flush_loop())

    async def connect(self) -> None:
        """Dial every peer not currently connected (best-effort)."""
        for dst in self.peers:
            if dst not in self._writers:
                await self._dial(dst)

    async def stop(self) -> None:
        """Graceful shutdown: flush the durable image, then close."""
        if self.data_dir is not None and not self._stopped:
            self._flush_snapshot()
        self.kill()
        await asyncio.sleep(0)  # let cancelled tasks unwind

    def kill(self) -> None:
        """Abrupt crash: close everything, *without* a final flush — the
        unflushed tail of the log is lost, as a real power cut loses it."""
        self._stopped = True
        for task in self._tasks:
            task.cancel()
        self._tasks.clear()
        for server in self._servers:
            server.close()
        self._servers.clear()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()

    # -- application surface (wait-free, synchronous) -------------------------------

    def submit(self, update: Any) -> dict[str, Any]:
        """Issue one update locally; returns the replica's witness metadata
        (timestamp etc.).  Never awaits."""
        self._check_running()
        self._apply_effects(self.core.submit(update))
        return self.core.witness_meta()

    def query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        """Answer one query from local state.  Never awaits."""
        self._check_running()
        output, effects = self.core.query(name, args)
        if effects:
            self._apply_effects(effects)
        return output

    def local_state(self) -> Any:
        return self.core.local_state()

    def witness_meta(self) -> dict[str, Any]:
        return self.core.witness_meta()

    def sync_now(self) -> None:
        """Force one anti-entropy round out of band (tests, admin)."""
        self._check_running()
        self._apply_effects(self.core.sync_tick())

    # -- the effect interpreter ------------------------------------------------------

    def _apply_effects(self, effects: tuple[Effect, ...]) -> None:
        for eff in effects:
            cls = eff.__class__
            if cls is Broadcast:
                for dst in self.peers:
                    self._ship(dst, eff.payload)
            elif cls is Send:
                self._ship(eff.dst, eff.payload)
            elif cls is Timer:
                self._spawn(self._one_shot_tick(eff.kind))
            elif cls is Persist:
                self._dirty = True  # the flusher owns the disk
            # QueryAnswered: already consumed synchronously by query().

    def _ship(self, dst: int, payload: Any) -> None:
        writer = self._writers.get(dst)
        if writer is not None and writer.is_closing():
            self._writers.pop(dst, None)  # stale link (peer died/moved)
            writer = None
        if writer is None:
            self._drops.inc()
            self._spawn(self._dial(dst))  # repair the link for next time
            return
        try:
            write_frame(writer, (MSG, self.pid, payload))
            self._sent.inc()
        except (ConnectionError, RuntimeError):
            self._drops.inc()
            self._writers.pop(dst, None)

    # -- peer links ------------------------------------------------------------------

    async def _dial(self, dst: int) -> None:
        if self._stopped or dst in self._writers:
            return
        addr = self.peers.get(dst)
        if addr is None:
            return
        try:
            _, writer = await asyncio.open_connection(*addr)
        except OSError:
            return  # peer down; anti-entropy retries via _ship
        if dst in self._writers or self._stopped:  # lost the race
            writer.close()
            return
        write_frame(writer, (HELLO, self.pid))
        self._writers[dst] = writer

    async def _serve_peer(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._stopped:
                try:
                    frame = await read_frame(reader)
                except FrameError:
                    break
                if frame is None:
                    break
                kind = frame[0]
                if kind == MSG:
                    _, src, payload = frame
                    self._received.inc()
                    self._apply_effects(self.core.deliver(int(src), payload))
                # HELLO (or anything unknown) needs no reply.
        finally:
            writer.close()

    # -- periodic work -----------------------------------------------------------------

    async def _sync_loop(self) -> None:
        while not self._stopped:
            await asyncio.sleep(self.sync_interval)
            if self.core.sync_capable:
                self._apply_effects(self.core.sync_tick())

    async def _one_shot_tick(self, kind: str) -> None:
        await asyncio.sleep(self.sync_interval / 2)
        if not self._stopped:
            self._apply_effects(self.core.sync_tick(kind))

    async def _flush_loop(self) -> None:
        while not self._stopped:
            await asyncio.sleep(self.flush_interval)
            if self._dirty:
                self._flush_snapshot()

    def _flush_snapshot(self) -> None:
        path = self.snapshot_path
        if path is None:
            return
        os.makedirs(self.data_dir, exist_ok=True)  # type: ignore[arg-type]
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(self.core.snapshot())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._dirty = False
        self._flushes.inc()

    # -- internals ----------------------------------------------------------------------

    def _spawn(self, coro) -> None:
        if self._stopped:
            coro.close()
            return
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._task_done)

    def _task_done(self, task: asyncio.Task) -> None:
        """Done-callback for every background task: surface exceptions.

        Without this, a task that dies (sync loop, flusher, one-shot
        tick) vanishes silently — asyncio only mentions never-retrieved
        exceptions at GC time, on stderr, long after the damage.  The
        error is logged, counted, and kept on :attr:`task_errors` so
        tests and operators can assert on it.
        """
        self._tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is None:
            return
        self.task_errors.append(exc)
        self._task_errors.inc()
        _LOG.error(
            "node %d background task %s crashed: %r",
            self.pid,
            task.get_name(),
            exc,
        )

    def _check_running(self) -> None:
        if self._stopped:
            raise NodeStoppedError(f"node {self.pid} has been stopped")
