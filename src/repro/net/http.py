"""A minimal HTTP/1.1 front-end for a :class:`~repro.net.node.ReplicaNode`.

Hand-rolled on asyncio streams (the toolchain ships no third-party HTTP
server), supporting exactly what the object API needs: request-line +
headers, ``Content-Length`` bodies, keep-alive connections (the load
harness reuses one connection per simulated user).  JSON in, JSON out;
values round-trip through the :mod:`repro.proto.wire` codec so query
outputs like frozensets survive.

Routes::

    GET  /healthz        -> {"ok": true, "pid": 0, "n": 3,
                             "task_errors": {"count": 0, "last": null},
                             "storage": {"backend": "journal",
                                         "corrupt_image": null, ...}}
    GET  /state          -> {"state": <encoded local state>}
    GET  /witness        -> {"witness": {...}}   (timestamp, visibility, of the
                            last local op whose witness was not already claimed;
                            POST /update claims its own in the response)
    GET  /metrics        -> {"metrics": {...}}   (registry.flat()); with
                            ``Accept: text/plain`` or ``?format=text`` the
                            Prometheus text exposition instead (scrapable)
    POST /update         <- {"name": "insert", "args": [1]}
    POST /query          <- {"name": "contains", "args": [1]}
    GET  /query/<name>   -> shorthand for a zero-argument query

Updates complete locally (wait-free) — a 200 means the update was applied
and broadcast, not that any peer acknowledged it.  That *is* the paper's
contract: update consistency trades immediate agreement for wait-free
termination, and convergence is the network's job.

The front-end is also where traces begin: every ``POST /update`` mints a
:class:`~repro.obs.wall.TraceContext` (honouring a client-supplied
``X-Trace-Id``) and stamps the submit wall time — the zero point each
replica measures its convergence lag from.  The trace id comes back in
both the JSON response (``"trace"``) and an ``X-Trace-Id`` response
header.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Any

from repro.core.adt import Update
from repro.obs.wall import TraceContext, wall_now
from repro.proto.wire import decode_value, encode_value

if TYPE_CHECKING:
    from repro.net.node import ReplicaNode

#: request bodies beyond this are rejected (absurd for an object op).
MAX_BODY = 1 * 1024 * 1024

#: the Prometheus text-exposition content type (format v0.0.4).
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error", 503: "Service Unavailable"}


async def serve_http(node: "ReplicaNode", host: str, port: int):
    """Start the front-end; returns the asyncio server."""

    async def handler(reader, writer):
        await _serve_connection(node, reader, writer)

    return await asyncio.start_server(handler, host, port)


async def _serve_connection(node: "ReplicaNode", reader, writer) -> None:
    try:
        while True:
            request = await _read_request(reader)
            if request is None:
                break
            method, path, headers, body = request
            status, payload, content_type, extra = _route(
                node, method, path, body, headers
            )
            keep = headers.get("connection", "keep-alive").lower() != "close"
            extra_lines = "".join(
                f"{name}: {value}\r\n" for name, value in extra.items()
            )
            writer.write(
                b"HTTP/1.1 %d %s\r\n"
                b"Content-Type: %s\r\n"
                b"Content-Length: %d\r\n"
                b"%s"
                b"Connection: %s\r\n\r\n"
                % (status, _REASONS[status].encode(), content_type.encode(),
                   len(payload), extra_lines.encode("latin-1"),
                   b"keep-alive" if keep else b"close")
            )
            writer.write(payload)
            await writer.drain()
            if not keep:
                break
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    finally:
        writer.close()


async def _read_request(reader):
    """Parse one request; ``None`` on clean EOF before a request line."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY:
        raise ConnectionError("request body too large")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


def _wants_prometheus_text(headers: dict[str, str], query: str) -> bool:
    """Content negotiation for ``/metrics``: explicit ``?format=text`` or
    an ``Accept`` header asking for ``text/plain`` (what Prometheus's
    scraper sends) selects the text exposition."""
    if "format=text" in query.split("&"):
        return True
    return "text/plain" in headers.get("accept", "")


def _route(
    node: "ReplicaNode",
    method: str,
    path: str,
    body: bytes,
    headers: dict[str, str] | None = None,
):
    """Dispatch one request.

    Returns ``(status, body_bytes, content_type, extra_headers)`` —
    almost every route speaks JSON; the Prometheus text exposition of
    ``/metrics`` is the one non-JSON body.
    """
    headers = headers or {}
    path, _, query = path.partition("?")
    if method == "GET" and path == "/metrics" and _wants_prometheus_text(headers, query):
        text = node.registry.to_prometheus_text()
        return 200, text.encode("utf-8"), PROM_CONTENT_TYPE, {}
    status, doc, extra = _route_json(node, method, path, body, headers)
    return status, json.dumps(doc).encode("utf-8"), "application/json", extra


def _route_json(
    node: "ReplicaNode",
    method: str,
    path: str,
    body: bytes,
    headers: dict[str, str],
):
    """The JSON routes; returns ``(status, json_document, extra_headers)``."""
    from repro.net.node import NodeStoppedError

    try:
        if method == "GET":
            if path == "/healthz":
                errors = node.task_errors
                return 200, {
                    "ok": True, "pid": node.pid, "n": node.n,
                    "task_errors": {
                        "count": len(errors),
                        "last": repr(errors[-1]) if errors else None,
                    },
                    # Durable-storage health: journal stats plus the last
                    # corrupt-image error (how a quarantined boot shows up
                    # to an operator without grepping logs).
                    "storage": node.storage_info(),
                }, {}
            if path == "/state":
                return 200, {"state": encode_value(node.local_state())}, {}
            if path == "/witness":
                return 200, {"witness": encode_value(node.witness_meta())}, {}
            if path == "/metrics":
                return 200, {"metrics": node.registry.flat()}, {}
            if path.startswith("/query/"):
                name = path[len("/query/"):]
                output = node.query(name)
                return 200, {"output": encode_value(output)}, {}
            return 404, {"error": f"no route {path}"}, {}
        if method == "POST":
            if path not in ("/update", "/query"):
                return 404, {"error": f"no route {path}"}, {}
            try:
                doc = json.loads(body.decode("utf-8") or "{}")
                name = doc["name"]
                args = tuple(decode_value(doc.get("args", [])))
            except (ValueError, KeyError, TypeError) as exc:
                return 400, {"error": f"bad request body: {exc}"}, {}
            if path == "/update":
                update = Update(name, args)
                spec = getattr(node.core.replica, "spec", None)
                if spec is not None:
                    # Fail fast on junk at the edge by probing a throwaway
                    # state; the replica itself never validates (wait-free,
                    # lazy replay), so a typo'd name would otherwise poison
                    # the log and break every later query.
                    spec.apply(spec.initial_state(), update)
                trace_id = headers.get("x-trace-id") or node.mint_trace_id()
                ctx = TraceContext(trace_id, wall_now())
                meta = node.submit(update, ctx=ctx)
                if node.tracer.enabled:
                    node.tracer.span(
                        "http.update", ctx.t0, wall_now(), pid=node.pid,
                        attrs={"trace": trace_id, "update": name},
                    )
                ts = meta.get("timestamp")
                return 200, {
                    "ok": True,
                    "timestamp": None if ts is None else list(ts),
                    "trace": trace_id,
                }, {"X-Trace-Id": trace_id}
            output = node.query(name, args)
            return 200, {"output": encode_value(output)}, {}
        return 405, {"error": f"method {method} not allowed"}, {}
    except NodeStoppedError as exc:
        return 503, {"error": str(exc)}, {}
    except Exception as exc:  # spec rejections (unknown op, bad args) land here
        return 400, {"error": f"{type(exc).__name__}: {exc}"}, {}


# -- a matching client (smoke tests, load harness) ------------------------------


class HttpClient:
    """One keep-alive connection speaking the front-end's dialect."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _ensure(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def request_full(
        self,
        method: str,
        path: str,
        doc: Any | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One request/response; returns status, response headers (names
        lower-cased) and the raw body bytes."""
        await self._ensure()
        assert self._reader is not None and self._writer is not None
        body = b"" if doc is None else json.dumps(doc).encode("utf-8")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        self._writer.write(
            b"%s %s HTTP/1.1\r\nHost: %s\r\nContent-Length: %d\r\n"
            b"Content-Type: application/json\r\n%s\r\n"
            % (method.encode(), path.encode(), self.host.encode(), len(body),
               extra.encode("latin-1"))
        )
        if body:
            self._writer.write(body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        response_headers: dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0") or "0")
        payload = await self._reader.readexactly(length) if length else b"{}"
        return status, response_headers, payload

    async def request(
        self, method: str, path: str, doc: Any | None = None
    ) -> tuple[int, Any]:
        """One request/response on the persistent connection."""
        status, _, payload = await self.request_full(method, path, doc)
        return status, json.loads(payload.decode("utf-8"))

    async def update(self, name: str, *args: Any) -> Any:
        status, doc = await self.request(
            "POST", "/update", {"name": name, "args": encode_value(list(args))}
        )
        if status != 200:
            raise RuntimeError(f"update {name} failed ({status}): {doc}")
        return doc

    async def query(self, name: str, *args: Any) -> Any:
        status, doc = await self.request(
            "POST", "/query", {"name": name, "args": encode_value(list(args))}
        )
        if status != 200:
            raise RuntimeError(f"query {name} failed ({status}): {doc}")
        return decode_value(doc["output"])

    async def state(self) -> Any:
        status, doc = await self.request("GET", "/state")
        if status != 200:
            raise RuntimeError(f"state failed ({status}): {doc}")
        return decode_value(doc["state"])

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._reader = None
