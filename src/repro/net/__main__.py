"""CLI for the asyncio backend: ``python -m repro.net <command>``.

``serve`` runs one replica process::

    python -m repro.net serve --pid 0 --object set \\
        --peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \\
        --http-port 8000 --data-dir /var/lib/repro

The ``--peers`` list doubles as the membership: its length is ``n`` and
the ``--pid``-th entry is this process's own peer address (it binds that
port).  Start one process per entry and the mesh assembles itself.

``smoke`` runs the self-contained crash/recovery scenario used by CI
(see :mod:`repro.net.smoke`).
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.core.checkpoint import GarbageCollectedReplica
from repro.core.universal import UniversalReplica
from repro.net.node import ReplicaNode
from repro.specs import CounterSpec, GSetSpec, MapSpec, SetSpec

OBJECTS = {
    "set": SetSpec,
    "counter": CounterSpec,
    "map": MapSpec,
    "gset": GSetSpec,
}


def make_factory(object_name: str, *, gc: bool = False):
    """A ``(pid, n) -> replica`` factory for a named UQ-ADT object."""
    spec_cls = OBJECTS.get(object_name)
    if spec_cls is None:
        raise ValueError(
            f"unknown object {object_name!r} (choose from {sorted(OBJECTS)})"
        )
    spec = spec_cls()
    if gc:
        return lambda pid, n: GarbageCollectedReplica(pid, n, spec)
    return lambda pid, n: UniversalReplica(pid, n, spec)


def _parse_peers(text: str) -> list[tuple[str, int]]:
    peers = []
    for entry in text.split(","):
        host, _, port = entry.strip().rpartition(":")
        peers.append((host or "127.0.0.1", int(port)))
    return peers


async def _serve(args: argparse.Namespace) -> None:
    peers = _parse_peers(args.peers)
    n = len(peers)
    if not 0 <= args.pid < n:
        raise SystemExit(f"--pid {args.pid} out of range for {n} peers")
    if args.json_logs:
        from repro.obs.log import configure

        configure()
    tracer = None
    if args.trace_out:
        from repro.obs.wall import WallTracer

        tracer = WallTracer()
    host, peer_port = peers[args.pid]
    node = ReplicaNode(
        args.pid, n, make_factory(args.object, gc=args.gc),
        host=host,
        data_dir=args.data_dir,
        sync_interval=args.sync_interval,
        **({"tracer": tracer} if tracer is not None else {}),
    )
    await node.listen(peer_port=peer_port, http_port=args.http_port)
    node.set_peers({pid: addr for pid, addr in enumerate(peers)})
    await node.start()
    print(
        f"replica {args.pid}/{n} ({args.object}"
        f"{', gc' if args.gc else ''}): peers on {host}:{node.peer_port}, "
        f"http on {host}:{node.http_port}",
        flush=True,
    )
    try:
        await asyncio.Event().wait()  # serve until interrupted
    finally:
        await node.stop()
        if tracer is not None:
            import json

            from repro.obs.wall import wall_chrome_trace

            # Shutdown-time write: the node is already stopped.
            with open(args.trace_out, "w") as fh:  # uqlint: disable=ASY304 -- shutdown write
                json.dump(
                    wall_chrome_trace(
                        tracer, trace_name=f"repro net replica {args.pid}"
                    ),
                    fh,
                )
            print(f"trace written to {args.trace_out}", flush=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.net",
                                     description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run one replica process")
    serve.add_argument("--pid", type=int, required=True)
    serve.add_argument("--peers", required=True,
                       help="comma-separated host:port peer list (pid order)")
    serve.add_argument("--object", default="set", choices=sorted(OBJECTS))
    serve.add_argument("--gc", action="store_true",
                       help="use the garbage-collected replica")
    serve.add_argument("--http-port", type=int, default=0,
                       help="HTTP front-end port (0 = ephemeral)")
    serve.add_argument("--data-dir", default=None,
                       help="directory for the durable replica image")
    serve.add_argument("--sync-interval", type=float, default=0.25)
    serve.add_argument("--json-logs", action="store_true",
                       help="structured JSON log lines on stderr")
    serve.add_argument("--trace-out", default=None,
                       help="record a wall-clock trace; write the Perfetto "
                            "document here on shutdown (merge per-node files "
                            "with repro.obs.wall.merge_chrome_traces)")

    sub.add_parser("smoke", help="run the CI crash/recovery scenario",
                   add_help=False)

    args, rest = parser.parse_known_args(argv)
    if args.command == "smoke":
        from repro.net.smoke import main as smoke_main

        return smoke_main(rest)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
