"""Length-prefixed framing for the TCP peer links.

One frame is a 4-byte big-endian length followed by that many bytes of
canonical :func:`repro.proto.wire.encode_payload` JSON.  The framing
layer is deliberately dumb: it moves one encoded value per frame and
knows nothing about what the value means (hellos, protocol payloads,
HTTP — those are :mod:`repro.net.node`'s vocabulary).

The length cap rejects obviously corrupt or hostile prefixes before
allocating; 16 MiB comfortably covers the largest legitimate frame (a
state-transfer payload for a long-lived object) while keeping a garbage
prefix from requesting a multi-gigabyte read.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any

from repro.proto.wire import decode_payload, encode_payload

#: Hard cap on one frame's body size (corrupt-prefix guard).
MAX_FRAME = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


class FrameError(ValueError):
    """A frame violated the framing contract (oversized or truncated)."""


def encode_frame(value: Any) -> bytes:
    """One value as a wire frame: ``len(body)`` big-endian + body."""
    body = encode_payload(value)
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame of {len(body)} bytes exceeds cap {MAX_FRAME}")
    return _LEN.pack(len(body)) + body


def decode_frame(data: bytes) -> tuple[Any, bytes]:
    """Decode one frame from ``data``; returns ``(value, rest)``.

    Synchronous twin of :func:`read_frame` for tests and for parsing
    recorded byte streams.  Raises :class:`FrameError` when ``data`` does
    not start with a complete frame.
    """
    if len(data) < _LEN.size:
        raise FrameError("truncated length prefix")
    (length,) = _LEN.unpack_from(data)
    if length > MAX_FRAME:
        raise FrameError(f"frame of {length} bytes exceeds cap {MAX_FRAME}")
    end = _LEN.size + length
    if len(data) < end:
        raise FrameError(f"truncated frame body ({len(data) - _LEN.size}/{length})")
    return decode_payload(data[_LEN.size:end]), data[end:]


async def read_frame(reader: asyncio.StreamReader) -> Any | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise FrameError("connection closed mid-prefix") from exc
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME:
        raise FrameError(f"frame of {length} bytes exceeds cap {MAX_FRAME}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc
    return decode_payload(body)


# -- optional MSG-frame headers ------------------------------------------------
#
# Protocol MSG frames are ``(kind, src, payload)`` tuples; a node may
# append one trailing dict of observability headers (trace propagation —
# see ``repro.proto.wire.encode_trace_headers``).  The two helpers below
# are the whole convention: headers are attached only when non-empty, so
# an untraced node's frames stay byte-identical to the pre-header wire
# format (the sim↔net differential test depends on that), and a receiver
# ignores trailing elements beyond the headers dict (frames minted by a
# future protocol version must not kill the link).


def with_headers(frame: tuple[Any, ...], headers: dict[str, Any] | None) -> tuple[Any, ...]:
    """Append a header dict to a MSG frame tuple; no-op when empty."""
    if not headers:
        return frame
    return (*frame, headers)


def split_headers(rest: tuple[Any, ...]) -> tuple[Any, dict[str, Any]]:
    """Split a MSG frame's tail into ``(payload, headers)``.

    ``rest`` is everything after the ``(kind, src)`` prefix.  A bare
    payload yields empty headers; a non-dict in the header slot or extra
    trailing elements are ignored (forward compatibility).
    """
    if not rest:
        raise FrameError("MSG frame carries no payload")
    payload = rest[0]
    headers = rest[1] if len(rest) > 1 and isinstance(rest[1], dict) else {}
    return payload, headers


def write_frame(writer: asyncio.StreamWriter, value: Any) -> None:
    """Queue one frame on ``writer`` (no await: callers drain separately).

    Submitting without awaiting is what keeps a burst of updates a single
    synchronous event-loop turn — the property the sim↔net differential
    test leans on for deterministic Lamport stamps.
    """
    writer.write(encode_frame(value))
