"""The asyncio network backend: the protocol core over real sockets.

This package is the second interpreter of the sans-io protocol layer
(:mod:`repro.proto`).  The deterministic simulator interprets a core's
effects as virtual-time deliveries; here the *same effects from the same
core* become length-prefixed frames on TCP links, periodic anti-entropy
timers and fsynced snapshot files — which is the refactor's whole point:
every chaos scenario the simulator checks exercises exactly the code that
runs on the wire, and the sim↔net differential test pins the two
backends to byte-identical witnesses.

Layers, bottom up:

* :mod:`repro.net.framing` — 4-byte length-prefixed frames of canonical
  :mod:`repro.proto.wire` JSON;
* :mod:`repro.net.node` — :class:`~repro.net.node.ReplicaNode`, one
  replica process: peer mesh, effect interpreter, durable images;
* :mod:`repro.net.http` — the stdlib HTTP/1.1 object front-end (and the
  matching keep-alive client);
* :mod:`repro.net.harness` — :class:`~repro.net.harness.LocalCluster`,
  n nodes on localhost for tests and load runs;
* :mod:`repro.net.smoke` — the CI boot/load/crash/recover scenario.

Run a replica with ``python -m repro.net serve`` (see
:mod:`repro.net.__main__` for the flags).
"""

from repro.net.framing import FrameError, decode_frame, encode_frame, read_frame
from repro.net.harness import LocalCluster
from repro.net.http import HttpClient, serve_http
from repro.net.node import NodeStoppedError, ReplicaNode

__all__ = [
    "FrameError",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "LocalCluster",
    "HttpClient",
    "serve_http",
    "ReplicaNode",
    "NodeStoppedError",
]
