"""The replica (process) interface — wait-freedom as an API contract.

A replica is the per-process half of a replicated object implementation.
The runtime calls exactly three hooks:

* :meth:`Replica.on_update` — the application issued an update locally.
  Returns the payloads to broadcast (Algorithm 1 broadcasts exactly one).
* :meth:`Replica.on_query` — the application issued a query locally.
  Returns the output, computed from local state only.
* :meth:`Replica.on_message` — the network delivered a payload.  May
  return further payloads to broadcast (none of the paper's algorithms
  need this, but e.g. anti-entropy protocols would).

None of the hooks can wait: there is no blocking receive in the interface,
so every implementation expressible here completes operations "based
solely on the local knowledge of the process" — the wait-free system model
of Section VII-A.  Crash failures are enforced by the runtime (a crashed
replica's hooks are never called again).

Replicas additionally expose introspection used by the analysis layer:
:meth:`Replica.local_state` (the value a read-all query would see) and
:meth:`Replica.witness_meta` (per-operation metadata for SUC witness
reconstruction — see Proposition 4).
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import Update
from repro.obs.metrics import MetricsRegistry


class Replica:
    """Base class for per-process replica algorithms.

    The class (and the hot replica implementations built on it) declares
    ``__slots__``: a simulation holds one replica per process but the
    replicas hold millions of stamped log entries, and keeping the
    per-instance dict off the core classes keeps attribute access on the
    replay path one pointer chase shorter.  Experimental subclasses that
    omit ``__slots__`` simply get a ``__dict__`` back — nothing breaks.
    """

    __slots__ = ("pid", "n", "outbox", "metrics")

    def __init__(self, pid: int, n: int) -> None:
        if not 0 <= pid < n:
            raise ValueError(f"pid {pid} out of range for {n} processes")
        self.pid = pid
        self.n = n
        #: directed-send buffer: hooks may queue ``(dst, payload)`` pairs
        #: (``dst=None`` broadcasts) via :meth:`send_to`; the runtime
        #: drains it after every hook call.  Request/reply protocols (the
        #: quorum baseline) need point-to-point replies, which the plain
        #: broadcast-only return channel cannot express.
        self.outbox: list[tuple[int | None, Any]] = []
        #: observability home: a private registry at construction so a
        #: stand-alone replica accounts for itself; the cluster re-binds
        #: every replica onto the shared per-run registry.
        self.metrics = MetricsRegistry()
        self.bind_metrics(self.metrics)

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """(Re-)home this replica's instruments on ``registry``.

        Called once during construction with a private registry, and again
        by :class:`~repro.sim.cluster.Cluster` to move the replica onto
        the run-wide registry.  Overrides must create their instruments
        here (idempotent registration makes re-binding safe) and may rely
        only on ``self.pid`` — the hook runs before subclass ``__init__``
        bodies.
        """
        self.metrics = registry

    def send_to(self, dst: int | None, payload: Any) -> None:
        """Queue a point-to-point send (or a broadcast when ``dst`` is
        ``None``) for the runtime to pick up after the current hook."""
        self.outbox.append((dst, payload))

    # -- hooks ------------------------------------------------------------------

    def on_update(self, update: Update) -> Sequence[Any]:
        """Apply a locally issued update; return payloads to broadcast."""
        raise NotImplementedError

    def on_query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        """Answer a locally issued query from local state only."""
        raise NotImplementedError

    def on_message(self, src: int, payload: Any) -> Sequence[Any]:
        """Incorporate a delivered payload; optionally broadcast more."""
        raise NotImplementedError

    # -- introspection ------------------------------------------------------------

    def local_state(self) -> Any:
        """The replica's current converged-candidate state (for analysis)."""
        raise NotImplementedError

    def witness_meta(self) -> dict[str, Any]:
        """Metadata for the most recent operation (timestamp, visibility).

        Implementations that construct SUC witnesses (Algorithm 1 and its
        optimized variants) override this; the default reports nothing.
        """
        return {}
