"""Adversarial schedule fuzzing.

The asynchronous model quantifies over *all* message schedules; the
latency models only sample benign ones.  :class:`AdversaryFuzzer` drives a
cluster through a seeded random sequence of adversarial moves — holds,
releases, partitions, heals, crashes, delivery bursts — interleaved with a
workload, exploring schedule corners (long one-way silences, repeated
flapping partitions, crash storms) that i.i.d. latencies essentially never
produce.

Used by the property tests: under every fuzzed schedule, Algorithm 1's
survivors converge to the timestamp linearization and the recorded SUC
witness verifies (the empirical universal quantification behind
Propositions 1's "any schedule" reasoning and Proposition 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.adt import Update
from repro.sim.cluster import Cluster


@dataclass
class FuzzReport:
    """What the adversary did during a fuzzed run."""

    moves: list[str] = field(default_factory=list)
    holds: int = 0
    releases: int = 0
    partitions: int = 0
    heals: int = 0
    crashes: int = 0
    delivered_bursts: int = 0

    def summary(self) -> str:
        """One-line tally of the adversary's moves."""
        return (
            f"{self.holds} holds, {self.releases} releases, "
            f"{self.partitions} partitions, {self.heals} heals, "
            f"{self.crashes} crashes, {self.delivered_bursts} bursts"
        )


class AdversaryFuzzer:
    """Seeded adversarial scheduler over a cluster.

    ``crash_budget`` bounds how many processes may crash (wait-freedom
    tolerates any number, but tests usually want survivors to compare);
    the fuzzer never crashes the last correct process.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        seed: int = 0,
        crash_budget: int = 0,
        allow_message_loss: bool = False,
        partition_probability: float = 0.15,
        hold_probability: float = 0.2,
        burst_probability: float = 0.4,
    ) -> None:
        #: ``allow_message_loss`` lets a crash also lose the victim's
        #: in-flight messages.  That breaks the *reliable broadcast*
        #: assumption of Algorithm 1 (a crashed sender's broadcast may
        #: reach only a subset) — only enable it against replicas built
        #: with ``relay=True`` (epidemic rebroadcast restores
        #: all-or-nothing delivery among survivors, provided at least one
        #: survivor received the payload).
        self.cluster = cluster
        self.rng = np.random.default_rng(seed)
        self.crash_budget = crash_budget
        self.allow_message_loss = allow_message_loss
        self.p_partition = partition_probability
        self.p_hold = hold_probability
        self.p_burst = burst_probability
        self.report = FuzzReport()
        self._held_pairs: set[tuple[int, int]] = set()
        self._partitioned = False

    # -- one adversarial move ---------------------------------------------------

    def step(self) -> None:
        """One adversarial move, drawn from the seeded distribution."""
        roll = self.rng.random()
        if roll < self.p_hold:
            self._toggle_hold()
        elif roll < self.p_hold + self.p_partition:
            self._toggle_partition()
        elif (
            self.crash_budget > 0
            and len(self.cluster.alive()) > 1
            and roll < self.p_hold + self.p_partition + 0.05
        ):
            self._crash_someone()
        elif roll < self.p_hold + self.p_partition + 0.05 + self.p_burst:
            self._burst()
        # else: do nothing this turn (silence is also a schedule)

    def _toggle_hold(self) -> None:
        n = self.cluster.n
        src, dst = self.rng.integers(n), self.rng.integers(n)
        if src == dst:
            return
        pair = (int(src), int(dst))
        if pair in self._held_pairs:
            self.cluster.network.release(*pair, now=self.cluster.now)
            self._held_pairs.discard(pair)
            self.report.releases += 1
            self.report.moves.append(f"release {pair}")
        else:
            self.cluster.network.hold(*pair)
            self._held_pairs.add(pair)
            self.report.holds += 1
            self.report.moves.append(f"hold {pair}")

    def _toggle_partition(self) -> None:
        if self._partitioned:
            self.cluster.heal()
            self._held_pairs.clear()
            self._partitioned = False
            self.report.heals += 1
            self.report.moves.append("heal")
        else:
            pids = list(range(self.cluster.n))
            self.rng.shuffle(pids)
            cut = int(self.rng.integers(1, max(2, len(pids))))
            groups = [pids[:cut], pids[cut:]]
            if all(groups):
                self.cluster.partition(groups)
                self._partitioned = True
                self.report.partitions += 1
                self.report.moves.append(f"partition {groups}")

    def _crash_someone(self) -> None:
        alive = self.cluster.alive()
        victim = int(self.rng.choice(alive))
        drop = self.allow_message_loss and bool(self.rng.random() < 0.5)
        self.cluster.crash(victim, drop_outgoing=drop)
        self.crash_budget -= 1
        self.report.crashes += 1
        self.report.moves.append(f"crash p{victim}{' (drop)' if drop else ''}")

    def _burst(self) -> None:
        burst = int(self.rng.integers(1, 6))
        for _ in range(burst):
            if not self.cluster.step():
                break
        self.report.delivered_bursts += 1

    # -- full runs -----------------------------------------------------------------

    def run_workload(
        self,
        operations: Sequence[tuple[int, Update]],
        *,
        queries_per_op: float = 0.3,
        query: tuple[str, tuple] = ("read", ()),
    ) -> FuzzReport:
        """Interleave a (pid, update) script with adversarial moves, then
        heal everything and drain (the paper's 'participants stop
        updating' suffix).  Skips operations at crashed processes."""
        for pid, op in operations:
            self.step()
            if pid in self.cluster.crashed:
                continue
            self.cluster.update(pid, op)
            if self.rng.random() < queries_per_op:
                target = int(self.rng.choice(self.cluster.alive()))
                self.cluster.query(target, query[0], query[1])
        self.cluster.heal()
        self._held_pairs.clear()
        self.cluster.run()
        return self.report
