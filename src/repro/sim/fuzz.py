"""Adversarial schedule fuzzing.

The asynchronous model quantifies over *all* message schedules; the
latency models only sample benign ones.  :class:`AdversaryFuzzer` drives a
cluster through a seeded random sequence of adversarial moves — holds,
releases, partitions, heals, crashes, delivery bursts — interleaved with a
workload, exploring schedule corners (long one-way silences, repeated
flapping partitions, crash storms) that i.i.d. latencies essentially never
produce.

Used by the property tests: under every fuzzed schedule, Algorithm 1's
survivors converge to the timestamp linearization and the recorded SUC
witness verifies (the empirical universal quantification behind
Propositions 1's "any schedule" reasoning and Proposition 4).

The module doubles as the CI chaos-smoke entry point::

    python -m repro.sim.fuzz --budget 30

drives seeded chaos runs — crash/recover/partition/heal over plain, lossy
and duplicating networks, channel-invariant checker enabled — until the
time budget runs out, exiting non-zero on any FIFO or convergence
regression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.adt import Update, _canonical
from repro.sim.cluster import Cluster


@dataclass
class FuzzReport:
    """What the adversary did during a fuzzed run."""

    moves: list[str] = field(default_factory=list)
    holds: int = 0
    releases: int = 0
    partitions: int = 0
    heals: int = 0
    crashes: int = 0
    recoveries: int = 0
    delivered_bursts: int = 0

    def summary(self) -> str:
        """One-line tally of the adversary's moves."""
        return (
            f"{self.holds} holds, {self.releases} releases, "
            f"{self.partitions} partitions, {self.heals} heals, "
            f"{self.crashes} crashes, {self.recoveries} recoveries, "
            f"{self.delivered_bursts} bursts"
        )


class AdversaryFuzzer:
    """Seeded adversarial scheduler over a cluster.

    ``crash_budget`` bounds how many processes may crash (wait-freedom
    tolerates any number, but tests usually want survivors to compare);
    the fuzzer never crashes the last correct process.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        seed: int = 0,
        crash_budget: int = 0,
        allow_message_loss: bool = False,
        partition_probability: float = 0.15,
        hold_probability: float = 0.2,
        burst_probability: float = 0.4,
        recover_probability: float = 0.0,
    ) -> None:
        #: ``allow_message_loss`` lets a crash also lose the victim's
        #: in-flight messages.  That breaks the *reliable broadcast*
        #: assumption of Algorithm 1 (a crashed sender's broadcast may
        #: reach only a subset) — only enable it against replicas built
        #: with ``relay=True`` (epidemic rebroadcast restores
        #: all-or-nothing delivery among survivors, provided at least one
        #: survivor received the payload).
        #: ``recover_probability`` turns crash-stop into crash-recovery:
        #: each move may restart a crashed replica from its durable log,
        #: sometimes truncated (a crash that beat the last fsync).
        self.cluster = cluster
        self.rng = np.random.default_rng(seed)
        self.crash_budget = crash_budget
        self.allow_message_loss = allow_message_loss
        self.p_partition = partition_probability
        self.p_hold = hold_probability
        self.p_burst = burst_probability
        self.p_recover = recover_probability
        self.report = FuzzReport()
        self._held_pairs: set[tuple[int, int]] = set()
        self._partitioned = False

    # -- one adversarial move ---------------------------------------------------

    def step(self) -> None:
        """One adversarial move, drawn from the seeded distribution."""
        roll = self.rng.random()
        base = self.p_hold + self.p_partition
        if roll < self.p_hold:
            self._toggle_hold()
        elif roll < base:
            self._toggle_partition()
        elif (
            self.crash_budget > 0
            and len(self.cluster.alive()) > 1
            and roll < base + 0.05
        ):
            self._crash_someone()
        elif (
            self.p_recover > 0
            and self.cluster.crashed
            and roll < base + 0.05 + self.p_recover
        ):
            self._recover_someone()
        elif roll < base + 0.05 + self.p_recover + self.p_burst:
            self._burst()
        # else: do nothing this turn (silence is also a schedule)

    def _toggle_hold(self) -> None:
        alive = self.cluster.alive()
        if len(alive) < 2:
            return
        src, dst = self.rng.choice(alive), self.rng.choice(alive)
        if src == dst:
            return
        pair = (int(src), int(dst))
        if pair in self._held_pairs:
            self.cluster.release(*pair)
            self._held_pairs.discard(pair)
            self.report.releases += 1
            self.report.moves.append(f"release {pair}")
        else:
            self.cluster.hold(*pair)
            self._held_pairs.add(pair)
            self.report.holds += 1
            self.report.moves.append(f"hold {pair}")

    def _toggle_partition(self) -> None:
        if self._partitioned:
            self.cluster.heal()
            self._held_pairs.clear()
            self._partitioned = False
            self.report.heals += 1
            self.report.moves.append("heal")
        else:
            pids = list(range(self.cluster.n))
            self.rng.shuffle(pids)
            cut = int(self.rng.integers(1, max(2, len(pids))))
            groups = [pids[:cut], pids[cut:]]
            if all(groups):
                self.cluster.partition(groups)
                self._partitioned = True
                self.report.partitions += 1
                self.report.moves.append(f"partition {groups}")

    def _crash_someone(self) -> None:
        alive = self.cluster.alive()
        victim = int(self.rng.choice(alive))
        drop = self.allow_message_loss and bool(self.rng.random() < 0.5)
        self.cluster.crash(victim, drop_outgoing=drop)
        self._held_pairs = {p for p in self._held_pairs if victim not in p}
        self.crash_budget -= 1
        self.report.crashes += 1
        self.report.moves.append(f"crash p{victim}{' (drop)' if drop else ''}")

    def _recover_someone(self) -> None:
        victim = int(self.rng.choice(sorted(self.cluster.crashed)))
        replica = self.cluster.replicas[victim]
        fsync_point = None
        if self.rng.random() < 0.5 and getattr(replica, "updates", None):
            # The crash beat the last fsync: only a prefix survived.
            fsync_point = int(self.rng.integers(0, len(replica.updates) + 1))
        self.cluster.recover(victim, fsync_point=fsync_point)
        self.report.recoveries += 1
        suffix = "" if fsync_point is None else f" (fsync@{fsync_point})"
        self.report.moves.append(f"recover p{victim}{suffix}")

    def _burst(self) -> None:
        burst = int(self.rng.integers(1, 6))
        for _ in range(burst):
            if not self.cluster.step():
                break
        self.report.delivered_bursts += 1

    # -- full runs -----------------------------------------------------------------

    def run_workload(
        self,
        operations: Sequence[tuple[int, Update]],
        *,
        queries_per_op: float = 0.3,
        query: tuple[str, tuple] = ("read", ()),
        anti_entropy_rounds: int = 0,
    ) -> FuzzReport:
        """Interleave a (pid, update) script with adversarial moves, then
        heal everything and drain (the paper's 'participants stop
        updating' suffix).  Skips operations at crashed processes.

        ``anti_entropy_rounds`` runs that many sync rounds after the drain
        — required for convergence when the cluster's network loses
        messages (reliable broadcast alone cannot repair a lost payload).
        """
        for pid, op in operations:
            self.step()
            if pid in self.cluster.crashed:
                continue
            self.cluster.update(pid, op)
            if self.rng.random() < queries_per_op:
                target = int(self.rng.choice(self.cluster.alive()))
                self.cluster.query(target, query[0], query[1])
        self.cluster.heal()
        self._held_pairs.clear()
        self.cluster.run()
        if anti_entropy_rounds:
            self.cluster.anti_entropy(rounds=anti_entropy_rounds)
        return self.report


# -- chaos smoke (CI entry point) ------------------------------------------------


def chaos_smoke(
    budget_seconds: float = 30.0,
    *,
    procs: int = 4,
    ops: int = 30,
    start_seed: int = 0,
    verbose: bool = False,
    clock: Callable[[], float] | None = None,
) -> dict:
    """Seeded chaos runs until the time budget is spent; raises on regression.

    Each seed picks a scenario — plain / lossy / duplicating network, FIFO
    on or off, crash-recovery enabled — runs a fuzzed workload with the
    channel-invariant checker armed, and asserts the survivors agree after
    heal + anti-entropy.  A FIFO regression raises
    :class:`~repro.sim.network.ChannelInvariantError` from inside the run;
    divergence raises :class:`AssertionError` naming the seed.

    ``clock`` injects the budget clock (tests pass a fake); the default is
    the wall clock, which only bounds *how many* seeded runs happen — each
    individual run stays a pure function of its seed.
    """
    from repro.core.universal import UniversalReplica
    from repro.sim.network import DuplicatingNetwork, LossyNetwork, Network
    from repro.specs import SetSpec
    from repro.specs import set_spec as S

    spec = SetSpec()
    scenarios = [
        (Network, {}),
        (LossyNetwork, {"drop_probability": 0.15}),
        (DuplicatingNetwork, {"duplicate_probability": 0.2}),
    ]
    if clock is None:
        import time

        # CLI time budget only — never inside the simulated world.  The
        # *reference* (not a call) is deliberately the injection point:
        # uqlint flags wall-clock calls, and every call site below goes
        # through the injected ``clock``.
        clock = time.monotonic

    deadline = clock() + budget_seconds
    seed = start_seed
    runs = 0
    # Always complete at least one seed: a zero-run smoke proves nothing,
    # and "0 runs ok" must never be reportable.
    while runs == 0 or clock() < deadline:
        network_cls, network_kwargs = scenarios[seed % len(scenarios)]
        fifo = bool((seed // len(scenarios)) % 2)
        cluster = Cluster(
            procs,
            lambda p, n: UniversalReplica(p, n, spec, relay=True),
            seed=seed,
            fifo=fifo,
            network_cls=network_cls,
            network_kwargs=network_kwargs,
        )
        fuzzer = AdversaryFuzzer(
            cluster,
            seed=seed,
            crash_budget=2,
            allow_message_loss=True,
            recover_probability=0.15,
        )
        rng = np.random.default_rng(seed)
        script = []
        for _ in range(ops):
            pid = int(rng.integers(procs))
            v = int(rng.integers(5))
            script.append((pid, S.insert(v) if rng.random() < 0.6 else S.delete(v)))
        fuzzer.run_workload(script, anti_entropy_rounds=5)
        states = {_canonical(s) for s in cluster.states().values()}
        assert len(states) <= 1, (
            f"chaos seed {seed} ({network_cls.__name__}, fifo={fifo}) diverged "
            f"after anti-entropy: {fuzzer.report.summary()}"
        )
        if verbose:
            print(
                f"seed {seed}: {network_cls.__name__} fifo={fifo} ok "
                f"({fuzzer.report.summary()})"
            )
        runs += 1
        seed += 1
    return {"runs": runs, "first_seed": start_seed, "last_seed": seed - 1}


def gc_state_transfer_scenario(seed: int, *, verbose: bool = False) -> dict:
    """One seeded GC crash/partition run that must exercise state transfer.

    The scenario drives the one repair path reliable broadcast cannot
    cover and v1 anti-entropy silently got wrong: a replica that crashed,
    lost part of its durable log to a missed fsync, and stayed
    partitioned while the survivors garbage-collected past its gap.

    Timeline (3 garbage-collected replicas over reliable FIFO channels —
    the only channel model stable-prefix GC supports; a crash here does
    *not* drop in-flight traffic, which would break receiver-side FIFO
    completeness claims the same way ``relay`` does):

    1. mixed traffic + heartbeats, everyone garbage-collects;
    2. the victim crashes; survivors keep updating;
    3. the victim recovers from a heavily fsync-truncated snapshot — its
       recovery sync request goes in flight — and is immediately
       partitioned away, parking that request;
    4. survivors update, heartbeat and collect until their GC floor
       reaches the victim's pre-crash clock (covering its lost entries);
    5. heal: the parked request is served — the survivors' floor now
       exceeds the victim's coverage, forcing a base-state handoff —
       and anti-entropy rounds converge the cluster.

    Raises ``AssertionError`` (naming the seed) if the run fails to
    exercise a state transfer or the replicas do not converge to
    identical states.
    """
    from repro.core.checkpoint import GarbageCollectedReplica
    from repro.specs import SetSpec
    from repro.specs import set_spec as S

    rng = np.random.default_rng(seed)
    spec = SetSpec()
    procs = 3
    cluster = Cluster(
        procs,
        # Manual collect_garbage() calls keep the timeline deterministic.
        lambda p, n: GarbageCollectedReplica(
            p, n, spec, gc_interval=10_000, sync_page_size=4
        ),
        seed=seed,
        fifo=True,
    )

    def gossip_round(pids: Sequence[int]) -> None:
        for pid in pids:
            cluster.update(pid, S.insert(int(rng.integers(8))))
        cluster.run()
        for pid in pids:
            cluster.heartbeat(pid)
        cluster.run()

    # Phase 1: everyone talks, everyone collects a stable prefix — then
    # keeps talking, so the victim dies with live log entries *above* its
    # own GC floor (the entries a missed fsync can destroy) while the
    # survivors' heard[victim] tracks its latest clock.
    for _ in range(4):
        gossip_round(range(procs))
    for pid in range(procs):
        cluster.replicas[pid].collect_garbage()
    for _ in range(2):
        gossip_round(range(procs))

    victim = int(rng.integers(procs))
    survivors = [p for p in range(procs) if p != victim]
    pre_crash_clock = cluster.replicas[victim].clock.value
    pre_crash_log = len(cluster.replicas[victim].updates)
    assert pre_crash_log > 0, (
        f"gc seed {seed}: victim p{victim} has an empty live log; nothing "
        f"can be lost to truncation and the scenario proves nothing"
    )
    cluster.crash(victim)
    gossip_round(survivors)

    # Phase 3: recover from a heavily truncated snapshot; the recovery
    # sync request goes in flight and is immediately parked by the
    # partition (the victim rejoins the network but not the survivors).
    cluster.recover(victim, fsync_point=min(1, pre_crash_log))
    cluster.partition([survivors, [victim]])
    for _ in range(2):
        cluster.update(victim, S.insert(int(rng.integers(8))))

    # Phase 4: survivors garbage-collect past the victim's lost entries.
    # Their floor is pinned at heard[victim] == the victim's pre-crash
    # clock, so it covers everything the truncation destroyed.
    for _ in range(6):
        gossip_round(survivors)
        for p in survivors:
            cluster.replicas[p].collect_garbage()
    floors = [cluster.replicas[p].gc_clock_floor for p in survivors]
    assert all(floor >= pre_crash_clock for floor in floors), (
        f"gc seed {seed}: survivors' GC floors {floors} never reached the "
        f"victim's pre-crash clock {pre_crash_clock}; scenario cannot "
        f"exercise state transfer"
    )

    # Phase 5: heal and converge.
    cluster.heal()
    cluster.run()
    cluster.anti_entropy(rounds=5)

    transfers = int(cluster.metrics.total("repro_sync_state_transfers_total"))
    installs = int(cluster.metrics.total("repro_sync_state_installs_total"))
    assert transfers >= 1 and installs >= 1, (
        f"gc seed {seed}: no state transfer happened (transfers="
        f"{transfers}, installs={installs}) — the scenario regressed"
    )
    states = {_canonical(s) for s in cluster.states().values()}
    assert len(states) == 1, (
        f"gc seed {seed}: replicas diverged after state transfer + "
        f"anti-entropy (victim p{victim}, pre-crash clock "
        f"{pre_crash_clock})"
    )
    stats = {
        "seed": seed,
        "victim": victim,
        "state_transfers": transfers,
        "state_installs": installs,
        "pages": int(cluster.metrics.total("repro_sync_pages_sent_total")),
    }
    if verbose:
        print(
            f"gc seed {seed}: victim p{victim} ok ({transfers} transfers, "
            f"{installs} installs, {stats['pages']} pages)"
        )
    return stats


def gc_chaos_smoke(
    budget_seconds: float = 30.0,
    *,
    start_seed: int = 0,
    verbose: bool = False,
    clock: Callable[[], float] | None = None,
) -> dict:
    """Seeded GC state-transfer scenarios until the budget is spent.

    The GC companion to :func:`chaos_smoke`: every seed must exercise a
    base-state handoff and converge (see
    :func:`gc_state_transfer_scenario`).  Always completes at least one
    seed.
    """
    if clock is None:
        import time

        clock = time.monotonic  # injection point; see chaos_smoke
    deadline = clock() + budget_seconds
    seed = start_seed
    runs = 0
    while runs == 0 or clock() < deadline:
        gc_state_transfer_scenario(seed, verbose=verbose)
        runs += 1
        seed += 1
    return {"runs": runs, "first_seed": start_seed, "last_seed": seed - 1}


def _main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.fuzz",
        description="chaos smoke: seeded fault-injection fuzzing with the "
        "channel-invariant checker enabled",
    )
    parser.add_argument("--budget", type=float, default=30.0,
                        help="wall-clock budget in seconds (default 30)")
    parser.add_argument("--procs", type=int, default=4)
    parser.add_argument("--ops", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0, help="first seed")
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument(
        "--gc", action="store_true",
        help="run the GC state-transfer scenario (crash + fsync-truncated "
        "recovery + partition past the GC floor) instead of the generic "
        "fuzzed chaos runs",
    )
    args = parser.parse_args(argv)
    if args.gc:
        stats = gc_chaos_smoke(
            args.budget, start_seed=args.seed, verbose=args.verbose,
        )
        print(
            f"gc chaos smoke: {stats['runs']} state-transfer runs ok "
            f"(seeds {stats['first_seed']}..{stats['last_seed']})"
        )
        return 0
    stats = chaos_smoke(
        args.budget,
        procs=args.procs,
        ops=args.ops,
        start_seed=args.seed,
        verbose=args.verbose,
    )
    print(
        f"chaos smoke: {stats['runs']} runs ok "
        f"(seeds {stats['first_seed']}..{stats['last_seed']})"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - CI entry point
    raise SystemExit(_main())
