"""Trace and replica-log persistence: save and reload runs as JSON.

Simulated runs are deterministic from their seed, but an audited trace is
often the artifact one wants to keep (or to feed to the checkers on a
different machine).  The codec round-trips every payload the library
produces: operations (name/args/output), witness metadata (timestamps,
visibility sets), and the common Python value shapes (tuples, frozensets,
dicts with non-string keys) that JSON cannot express natively — each gets
a small ``{"@": tag, ...}`` wrapper.

The same codec backs the *durable log* used by crash-recovery
(:meth:`repro.sim.cluster.Cluster.recover`): :func:`replica_snapshot`
serializes a replica's timestamped update log as the on-disk image a real
deployment would fsync, and :func:`restore_replica` reloads it into a
fresh replica.  The ``fsync_point`` parameter models a crash that beat the
last fsync — only a prefix of the log survives.  The Lamport clock is
always persisted in full (a write-ahead cell, fsynced at every tick): a
recovering process must never reuse a ``(clock, pid)`` timestamp that
copies of its pre-crash broadcasts may still carry.

The value codec and the durable replica image now live in
:mod:`repro.proto.wire` — the sans-io protocol package — because the real
transport (:mod:`repro.net`) frames the same encodings over TCP and its
durable store writes the same snapshot format; one codec is what makes
the two backends wire- and disk-compatible.  This module keeps the
*trace* codec (traces are a simulator artifact) and re-exports the moved
functions under their historical names.

Security note: the decoder builds only plain data (no pickle, no code
execution), so loading untrusted trace files is safe.
"""

from __future__ import annotations

import json

from repro.core.adt import Query, Update
from repro.proto.wire import (  # noqa: F401  (re-exported compatibility surface)
    decode_value,
    encode_value,
    replica_snapshot,
    restore_replica,
)
from repro.sim.cluster import OpRecord, Trace

_FORMAT = "repro-trace-v1"

__all__ = [
    "encode_value",
    "decode_value",
    "replica_snapshot",
    "restore_replica",
    "trace_to_json",
    "trace_from_json",
    "save_trace",
    "load_trace",
]


def trace_to_json(trace: Trace, *, indent: int | None = None) -> str:
    """Serialize a trace (records only; replica internals are derivable)."""
    doc = {
        "format": _FORMAT,
        "records": [
            {
                "eid": r.eid,
                "pid": r.pid,
                "time": r.time,
                "label": encode_value(r.label),
                "meta": encode_value(dict(r.meta)),
            }
            for r in trace.records
        ],
    }
    return json.dumps(doc, indent=indent)


def trace_from_json(text: str) -> Trace:
    """Parse a trace file back into a :class:`Trace`."""
    doc = json.loads(text)
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} file")
    trace = Trace()
    for rec in doc["records"]:
        label = decode_value(rec["label"])
        if not isinstance(label, (Update, Query)):
            raise ValueError(f"record {rec.get('eid')}: label is not an operation")
        meta = decode_value(rec["meta"])
        if not isinstance(meta, dict):
            raise ValueError(f"record {rec.get('eid')}: meta is not a mapping")
        trace.append(
            OpRecord(
                eid=int(rec["eid"]),
                pid=int(rec["pid"]),
                label=label,
                time=float(rec["time"]),
                meta=meta,
            )
        )
    return trace


def save_trace(trace: Trace, path) -> None:
    """Write ``trace`` to ``path`` as indented JSON (always UTF-8 — the
    platform default encoding must not leak into durable artifacts)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_to_json(trace, indent=2))


def load_trace(path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with open(path, encoding="utf-8") as fh:
        return trace_from_json(fh.read())
