"""Exhaustive schedule exploration — small-scope model checking.

Fuzzing samples adversarial schedules; for *small* scripts we can do
better and enumerate **every** delivery interleaving: at each step the
explorer either invokes the next scripted operation or delivers any one
pending message, branching on all choices (with memoization on the
reached configuration).  A property checked over this tree is checked
over the complete schedule space — the strongest evidence short of proof
that a guarantee does not depend on the adversary at all.

Used in tests to verify, over every schedule of 2-3 process scripts:

* Algorithm-1-family replicas converge in every leaf, each leaf's final
  state matching its own timestamp linearization (different schedules may
  legitimately converge to different states — Lamport stamps depend on
  delivery — but never diverge);
* the FIFO baseline has at least one diverging leaf whenever the script
  contains a concurrent non-commuting pair (Prop. 1's mechanism is not an
  artifact of a particular schedule).

Replicas are branched with ``copy.deepcopy``; scripts must stay small
(the schedule tree is exponential — the point is exhaustiveness, not
scale).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.core.adt import Update
from repro.sim.replica import Replica

#: One scripted action: ``(pid, update)``.
Script = Sequence[tuple[int, Update]]


@dataclass(frozen=True, slots=True)
class Leaf:
    """One fully explored schedule's outcome."""

    states: tuple[Any, ...]  # final local_state() per replica
    deliveries: tuple[tuple[int, int], ...]  # (dst, message index) order

    @property
    def converged(self) -> bool:
        from repro.core.adt import _canonical

        return len({_canonical(s) for s in self.states}) <= 1


class ScheduleExplorer:
    """DFS over all interleavings of a script with message deliveries."""

    def __init__(
        self,
        n: int,
        replica_factory: Callable[[int, int], Replica],
        *,
        fifo: bool = False,
        max_leaves: int = 200_000,
    ) -> None:
        self.n = n
        self.factory = replica_factory
        self.fifo = fifo
        self.max_leaves = max_leaves
        self.leaves_seen = 0
        self.states_pruned = 0

    def explore(self, script: Script) -> Iterator[Leaf]:
        """Yield a :class:`Leaf` per distinct complete schedule."""
        replicas = tuple(self.factory(pid, self.n) for pid in range(self.n))
        visited: set = set()
        self.leaves_seen = 0
        self.states_pruned = 0

        def snapshot_key(replicas, pending, step):
            pending_key = tuple(sorted(
                (dst, src, gen) for dst, src, gen, _ in pending
            ))
            parts = [step, pending_key]
            for r in replicas:
                log = getattr(r, "updates", None)
                if log is not None:
                    parts.append(tuple((cl, j) for cl, j, _ in log))
                else:
                    from repro.core.adt import _canonical

                    parts.append(_canonical(r.local_state()))
            return tuple(parts)

        def dfs(replicas, pending, step, trail) -> Iterator[Leaf]:
            if self.leaves_seen >= self.max_leaves:
                raise RuntimeError(
                    f"schedule space exceeds max_leaves={self.max_leaves}; "
                    f"shrink the script"
                )
            key = snapshot_key(replicas, pending, step)
            if key in visited:
                self.states_pruned += 1
                return
            visited.add(key)

            moves = 0
            # Choice A: invoke the next scripted operation.
            if step < len(script):
                moves += 1
                pid, update = script[step]
                branched = copy.deepcopy(replicas)
                payloads = branched[pid].on_update(update)
                new_pending = list(pending)
                for payload in payloads:
                    for dst in range(self.n):
                        if dst != pid:
                            # Messages are identified by the script step
                            # that produced them: deterministic across
                            # branches, so memoization works.
                            new_pending.append((dst, pid, step, payload))
                yield from dfs(branched, tuple(new_pending), step + 1, trail)

            # Choice B: deliver any one pending message.
            deliverable = self._deliverable(pending)
            for idx in deliverable:
                moves += 1
                dst, src, gen, payload = pending[idx]
                branched = copy.deepcopy(replicas)
                extra = branched[dst].on_message(src, payload)
                if extra:
                    raise NotImplementedError(
                        "the explorer does not support relaying replicas"
                    )
                new_pending = [m for i, m in enumerate(pending) if i != idx]
                yield from dfs(
                    branched, tuple(new_pending), step,
                    trail + ((dst, gen),),
                )

            if moves == 0:  # script done, nothing in flight: a leaf
                self.leaves_seen += 1
                yield Leaf(
                    states=tuple(r.local_state() for r in replicas),
                    deliveries=trail,
                )

        yield from dfs(replicas, (), 0, ())

    def _deliverable(self, pending) -> list[int]:
        """Indices of messages the adversary may deliver next.

        Plain channels: any pending message.  FIFO channels: per (src,
        dst) pair, only the oldest (lowest message id).
        """
        if not self.fifo:
            return list(range(len(pending)))
        oldest: dict[tuple[int, int], tuple[int, int]] = {}
        for i, (dst, src, gen, _) in enumerate(pending):
            key = (src, dst)
            if key not in oldest or gen < oldest[key][0]:
                oldest[key] = (gen, i)
        return [i for _, i in oldest.values()]


def explore_outcomes(
    n: int,
    replica_factory: Callable[[int, int], Replica],
    script: Script,
    *,
    fifo: bool = False,
    max_leaves: int = 200_000,
) -> tuple[list[Leaf], "ScheduleExplorer"]:
    """Convenience: collect every leaf of the schedule tree."""
    explorer = ScheduleExplorer(
        n, replica_factory, fifo=fifo, max_leaves=max_leaves
    )
    return list(explorer.explore(script)), explorer
