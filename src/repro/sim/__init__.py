"""Deterministic simulator of a wait-free asynchronous message-passing system.

This is the substrate the paper's Section VII-A assumes: a finite set of
sequential processes that may crash (halting failures), a complete reliable
network, no bound on process speed or transfer delay.  The paper's authors
reason on this model abstractly; we make it executable:

* :class:`~repro.sim.cluster.Cluster` — the runtime: replicas, a pending
  message pool, virtual time, fault injection (crashes, partitions) and a
  trace recorder.
* :class:`~repro.sim.network.Network` with pluggable
  :class:`~repro.sim.network.LatencyModel` — delivery delays are drawn from
  a seeded ``numpy`` generator, so every run is a pure function of the
  seed.
* :class:`~repro.sim.replica.Replica` — the algorithm interface.  Its
  contract *is* wait-freedom: ``on_update``/``on_query`` are synchronous
  local computations that may only hand messages back to the runtime; there
  is no receive primitive to block on.
* :mod:`~repro.sim.workload` — reproducible workload generators (random op
  mixes, conflict-heavy set workloads, the paper's scripted gadgets).
"""

from repro.sim.cluster import Cluster, OpRecord, Trace
from repro.sim.explore import Leaf, ScheduleExplorer, explore_outcomes
from repro.sim.network import (
    ChannelInvariantChecker,
    ChannelInvariantError,
    DuplicatingNetwork,
    ExponentialLatency,
    FixedLatency,
    LatencyModel,
    LossyNetwork,
    Network,
    UniformLatency,
)
from repro.sim.replica import Replica

__all__ = [
    "Cluster",
    "Trace",
    "OpRecord",
    "ScheduleExplorer",
    "explore_outcomes",
    "Leaf",
    "Network",
    "LossyNetwork",
    "DuplicatingNetwork",
    "ChannelInvariantChecker",
    "ChannelInvariantError",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "ExponentialLatency",
    "Replica",
]
