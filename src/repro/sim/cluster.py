"""The simulation runtime: replicas + network + virtual time + trace.

A :class:`Cluster` hosts one replicated object: ``n`` replicas produced by
a factory, a :class:`~repro.sim.network.Network`, and a :class:`Trace`
recording every application-level operation (the events of the distributed
history) together with the witness metadata replicas expose.

Wait-freedom is structural: :meth:`Cluster.update` and
:meth:`Cluster.query` run the replica hook synchronously and return — they
never deliver messages, never advance time, never touch other replicas.
Delivery happens only through :meth:`Cluster.step` / :meth:`Cluster.run`,
under the control of the experiment (the adversary).

Typical scripted use (the Proposition 1 gadget)::

    cluster = Cluster(2, lambda pid, n: UniversalReplica(pid, n, SetSpec()))
    cluster.network.hold(0, 1); cluster.network.hold(1, 0)  # isolate
    cluster.update(0, S.insert(1)); cluster.update(0, S.insert(3))
    cluster.update(1, S.insert(2)); cluster.update(1, S.delete(3))
    r0 = cluster.query(0, "read")        # sees only its own updates: {1,3}
    r1 = cluster.query(1, "read")        # {2}
    cluster.network.heal(cluster.now); cluster.run()
    assert cluster.query(0, "read") == cluster.query(1, "read")  # converged
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Mapping

import numpy as np

from repro.core.adt import Query, Update, _canonical
from repro.core.history import Event, History
from repro.core.criteria.witness import SUCWitness
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.proto.core import ProtocolCore
from repro.proto.effects import (
    ONLY_PERSIST_MESSAGE,
    Broadcast,
    Effect,
    Persist,
    QueryAnswered,
    Send,
    Timer,
)
from repro.sim.network import LatencyModel, Network
from repro.sim.replica import Replica

#: The effect contract (checked by uqlint EFX401): which members of the
#: closed ``repro.proto.effects.Effect`` union this backend dispatches on.
HANDLED_EFFECTS = (Broadcast, Send)
#: Deliberately uninterpreted here: the sim's durable image is taken on
#: demand by :mod:`repro.sim.persist` (``Persist`` marks nothing), virtual
#: time makes follow-up ticks explicit scenario steps (``Timer``), and
#: query outputs are returned synchronously (``QueryAnswered``).
IGNORED_EFFECTS = (Persist, Timer, QueryAnswered)


class CrashedProcessError(RuntimeError):
    """An operation was invoked on a crashed process."""


@dataclass(frozen=True, slots=True)
class OpRecord:
    """One application-level operation as recorded by the trace."""

    eid: int
    pid: int
    label: Update | Query
    time: float
    meta: Mapping[str, Any]

    @property
    def is_update(self) -> bool:
        return isinstance(self.label, Update)


class Trace:
    """Recorded operations, convertible to the formal history + witness."""

    def __init__(self) -> None:
        self.records: list[OpRecord] = []

    def append(self, record: OpRecord) -> None:
        """Record one operation (runtime use)."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def updates(self) -> list[OpRecord]:
        """The update records, in invocation order."""
        return [r for r in self.records if r.is_update]

    def queries(self) -> list[OpRecord]:
        """The query records, in invocation order."""
        return [r for r in self.records if not r.is_update]

    def to_history(self) -> History:
        """The distributed history: per-process chains in invocation order."""
        events = [Event(eid=r.eid, label=r.label, pid=r.pid) for r in self.records]
        by_pid: dict[int, list[Event]] = {}
        for ev, r in zip(events, self.records):
            by_pid.setdefault(r.pid, []).append(ev)
        from repro.util import ordering

        po = ordering.empty_relation(events)
        for chain in by_pid.values():
            for a, b in zip(chain, chain[1:]):
                ordering.add_edge(po, a, b)
        return History(events, po)

    def suc_witness(self, history: History | None = None) -> SUCWitness:
        """Reconstruct the Definition 9 witness from replica metadata.

        Requires every record's ``meta`` to carry ``"timestamp"`` (the
        ``(clock, pid)`` stamp) and every query's to carry ``"visible"``
        (the frozenset of visible updates' timestamps) — Algorithm 1
        replicas provide both.  Garbage-collected replicas additionally
        report ``"visible_floor"``: every update with clock at or below
        it was folded into the base state (hence visible) without being
        enumerated; the floor is expanded here against the recorded
        update timestamps.
        """
        if history is None:
            history = self.to_history()
        by_eid = {e.eid: e for e in history.events}
        timestamps: dict[Event, tuple[int, int]] = {}
        update_by_uid: dict[tuple[int, int], Event] = {}
        for r in self.records:
            ev = by_eid[r.eid]
            ts = r.meta.get("timestamp")
            if ts is None:
                raise ValueError(
                    f"record {r.eid} lacks a timestamp: replica does not "
                    f"construct SUC witnesses"
                )
            timestamps[ev] = tuple(ts)
            if r.is_update:
                update_by_uid[tuple(ts)] = ev
        visibility: dict[Event, frozenset[Event]] = {}
        for r in self.records:
            if r.is_update:
                continue
            ev = by_eid[r.eid]
            uids = r.meta.get("visible")
            if uids is None:
                raise ValueError(f"query record {r.eid} lacks visibility metadata")
            visible = {update_by_uid[tuple(u)] for u in uids}
            floor = int(r.meta.get("visible_floor", 0) or 0)
            if floor:
                visible.update(
                    ev_u for uid, ev_u in update_by_uid.items() if uid[0] <= floor
                )
            visibility[ev] = frozenset(visible)
        order = tuple(sorted(history.events, key=lambda e: timestamps[e]))
        return SUCWitness(order=order, visibility=visibility)


class Cluster:
    """``n`` replicas of one object over a simulated asynchronous network.

    Since the sans-io refactor the cluster is a thin *effect interpreter*
    over :class:`repro.proto.core.ProtocolCore`: every application
    operation, delivery, sync round and recovery goes through a core's
    typed event methods, and the cluster's only job is to map the
    returned :class:`~repro.proto.effects.Broadcast` /
    :class:`~repro.proto.effects.Send` effects onto the simulated network
    (``Persist`` is moot — the sim's durable image is taken on demand by
    :meth:`recover` — and ``Timer`` is owned by the experiment script).
    The asyncio backend (:mod:`repro.net`) interprets the same effects
    over TCP, so every chaos/fuzz/persistence scenario here exercises
    exactly the code that runs on the wire.
    """

    def __init__(
        self,
        n: int,
        replica_factory: Callable[[int, int], Replica],
        *,
        latency: LatencyModel | None = None,
        seed: int = 0,
        fifo: bool = False,
        network_cls: type[Network] = Network,
        network_kwargs: Mapping[str, Any] | None = None,
        registry: MetricsRegistry | None = None,
        tracer: NullTracer = NULL_TRACER,
    ) -> None:
        self.n = n
        self.rng = np.random.default_rng(seed)
        #: run-wide observability: one shared metrics registry (the network
        #: and every replica are re-homed onto it) and one virtual-time
        #: tracer (no-op unless the caller passes e.g. ``SimTracer()``).
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        #: ``network_cls``/``network_kwargs`` select the channel fault model
        #: (e.g. :class:`~repro.sim.network.LossyNetwork` with a drop
        #: probability); the default is the paper's reliable network.
        self.network = network_cls(
            n, latency=latency, rng=self.rng, fifo=fifo, **(network_kwargs or {})
        )
        self.network.tracer = tracer
        self.network.bind_metrics(self.metrics)
        self._replica_factory = replica_factory
        #: one protocol state machine per process (the sans-io cores the
        #: cluster interprets effects for).
        self.cores: list[ProtocolCore] = [
            ProtocolCore(pid, n, replica_factory, registry=self.metrics)
            for pid in range(n)
        ]
        self.now: float = 0.0
        self.trace = Trace()
        self.crashed: set[int] = set()
        self._eid = itertools.count()
        self._bind_cluster_metrics()

    def _bind_cluster_metrics(self) -> None:
        """Create the cluster's own instruments on the shared registry."""
        m = self.metrics
        self._dropped = m.counter(
            "repro_cluster_dropped_to_crashed_total",
            help="messages addressed to a crashed process and discarded",
        ).labels()
        self._recovered = m.counter(
            "repro_cluster_recoveries_total",
            help="crash-recovery restarts performed",
        ).labels()
        self._crashes = m.counter(
            "repro_cluster_crashes_total", help="processes crashed by the adversary",
        ).labels()
        updates = m.counter(
            "repro_cluster_updates_total",
            help="update operations issued", label_names=("pid",),
        )
        queries = m.counter(
            "repro_cluster_queries_total",
            help="query operations issued", label_names=("pid",),
        )
        # Per-pid series cached up front: hot paths index, never dict-lookup.
        self._update_series = [updates.labels(pid=p) for p in range(self.n)]
        self._query_series = [queries.labels(pid=p) for p in range(self.n)]
        self._replay_hist = m.histogram(
            "repro_cluster_query_replayed_updates",
            help="updates replayed to answer one query (replay amplification)",
        ).labels()
        self._time_gauge = m.gauge(
            "repro_cluster_virtual_time",
            help="the cluster's virtual clock (Cluster.now)",
        ).labels()

    # -- views --------------------------------------------------------------------------

    @property
    def replicas(self) -> list[Replica]:
        """The live replica objects, indexed by pid (a fresh view — the
        instances change when :meth:`recover` rebuilds one).  Tests and
        analysis introspect replicas through this; the cluster itself
        speaks only to the cores."""
        return [core.replica for core in self.cores]

    # -- deprecated counter aliases (registry-backed) ---------------------------------

    @property
    def dropped_to_crashed(self) -> int:
        """Deprecated: reads ``repro_cluster_dropped_to_crashed_total``."""
        return int(self._dropped.value)

    @property
    def recovered_count(self) -> int:
        """Deprecated: reads ``repro_cluster_recoveries_total``."""
        return int(self._recovered.value)

    # -- application-level operations (wait-free) -----------------------------------

    def update(self, pid: int, update: Update) -> None:
        """Issue ``update`` at process ``pid``; completes locally."""
        core = self._live_core(pid)
        self._apply_effects(pid, core.submit(update))
        meta = core.witness_meta()
        self._update_series[pid].inc()
        if self.tracer.enabled:
            self.tracer.event(
                "op.update", self.now, pid=pid,
                attrs={"update": str(update), "timestamp": meta.get("timestamp")},
            )
        self.trace.append(OpRecord(next(self._eid), pid, update, self.now, meta))

    def query(self, pid: int, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        """Issue query ``name(*args)`` at ``pid``; returns its output."""
        core = self._live_core(pid)
        before = core.replayed_updates
        output, effects = core.query(name, args)
        if effects:
            self._apply_effects(pid, effects)
        meta = core.witness_meta()
        replayed = core.replayed_updates - before
        self._query_series[pid].inc()
        self._replay_hist.observe(replayed)
        if self.tracer.enabled:
            self.tracer.event(
                "op.query", self.now, pid=pid,
                attrs={"query": name, "replayed": replayed,
                       "timestamp": meta.get("timestamp")},
            )
        self.trace.append(
            OpRecord(next(self._eid), pid, Query(name, args, output), self.now, meta)
        )
        return output

    # -- delivery & time --------------------------------------------------------------

    def step(self) -> bool:
        """Deliver the next in-flight message; False when none remain
        deliverable (held messages do not count)."""
        msg = self.network.pop_next()
        if msg is None:
            return False
        self.now = max(self.now, msg.deliver_at)
        self._time_gauge.set(self.now)
        if msg.dst in self.crashed:
            self._dropped.inc()
            if self.tracer.enabled:
                self.tracer.event(
                    "message.drop_to_crashed", self.now, pid=msg.dst,
                    attrs={"src": msg.src, "seq": msg.seq},
                )
            return True
        if self.tracer.enabled:
            self.tracer.span(
                "message.deliver", msg.sent_at, self.now, pid=msg.dst,
                attrs={"src": msg.src, "seq": msg.seq},
            )
            # Anti-entropy v2 payloads, matched by wire tag (string
            # literals: importing repro.core.sync here would cycle
            # through repro.sim's package init).
            p = msg.payload
            if isinstance(p, tuple) and p:
                if p[0] == "sync-resp":
                    self.tracer.event(
                        "sync.page", self.now, pid=msg.dst,
                        attrs={"src": msg.src, "entries": len(p[1])},
                    )
                elif p[0] == "sync-state":
                    self.tracer.event(
                        "sync.state_transfer", self.now, pid=msg.dst,
                        attrs={"src": msg.src,
                               "clock_floor": p[2].get("clock_floor")},
                    )
        effects = self.cores[msg.dst].deliver(msg.src, msg.payload)
        if effects is not ONLY_PERSIST_MESSAGE:
            self._apply_effects(msg.dst, effects)
        return True

    def run(self, max_steps: int = 10_000_000) -> int:
        """Deliver until quiescent; returns the number of deliveries.

        Untraced runs take a fused delivery loop: one message at a time in
        exactly :meth:`step`'s ``(deliver_at, seq)`` order — true batch
        pre-popping would reorder deliveries whenever a handler's reply is
        due before an already-popped message — but with the per-step
        attribute lookups, tracer checks and virtual-time gauge writes
        hoisted out.  That bookkeeping dominates the per-delivery cost of
        a hot replica, and sims deliver millions of messages per run.
        """
        if self.tracer.enabled:
            steps = 0
            while steps < max_steps and self.step():
                steps += 1
            if steps >= max_steps:
                raise RuntimeError(
                    f"network did not quiesce within {max_steps} deliveries"
                )
            return steps
        pop_next = self.network.pop_next
        broadcast = self.network.broadcast
        send = self.network.send
        cores = self.cores
        crashed = self.crashed
        dropped = self._dropped
        now = self.now
        steps = 0
        try:
            while steps < max_steps:
                msg = pop_next()
                if msg is None:
                    break
                steps += 1
                if msg.deliver_at > now:
                    now = msg.deliver_at
                dst = msg.dst
                if dst in crashed:
                    dropped.inc()
                    continue
                effects = cores[dst].deliver(msg.src, msg.payload)
                if effects is ONLY_PERSIST_MESSAGE:
                    continue  # the common quiescent delivery: nothing to ship
                for eff in effects:
                    cls = eff.__class__
                    if cls is Broadcast:
                        broadcast(dst, eff.payload, now)
                    elif cls is Send:
                        send(dst, eff.dst, eff.payload, now)
        finally:
            # A handler may raise (e.g. StabilityViolation): keep the
            # cluster clock and its gauge consistent regardless.
            self.now = now
            self._time_gauge.set(now)
        if steps >= max_steps:
            raise RuntimeError(f"network did not quiesce within {max_steps} deliveries")
        return steps

    def run_until(self, time: float) -> int:
        """Deliver every message due at or before ``time``; advance to it."""
        steps = 0
        while True:
            t = self.network.peek_time()
            if t is None or t > time:
                break
            self.step()
            steps += 1
        self.now = max(self.now, time)
        return steps

    def advance(self, dt: float) -> None:
        """Let ``dt`` of virtual time pass without delivering anything."""
        if dt < 0:
            raise ValueError("time cannot flow backwards")
        self.now += dt
        self._time_gauge.set(self.now)

    # -- faults ------------------------------------------------------------------------

    def crash(self, pid: int, *, drop_outgoing: bool = False) -> None:
        """Halt process ``pid``.  With ``drop_outgoing`` the adversary also
        loses its in-flight messages (a crash mid-broadcast).

        Intended semantics — crash interacts cleanly with holds:

        * A crashed process receives nothing: its inbound in-flight traffic
          (including held messages) is dropped *now* and counted once in
          :attr:`dropped_to_crashed`; a later ``heal()`` cannot re-deliver
          to it and inflate the counter.
        * It stops being a hold/partition endpoint: every hold involving it
          is dissolved.  Messages it already sent stay subject to channel
          reliability (unless ``drop_outgoing``), so parked outbound
          traffic is released rather than stranded forever.
        * Live replicas keep broadcasting to it (they cannot tell); those
          later sends are dropped at delivery time, as before.

        A crashed process may come back via :meth:`recover`.
        """
        self._check_pid(pid)
        if pid in self.crashed:
            return
        self.crashed.add(pid)
        dropped_out = 0
        if drop_outgoing:
            dropped_out = self.network.drop_messages(lambda m: m.src == pid)
        self.network.dissolve_holds(pid, self.now)
        dropped_in = self.network.drop_messages(lambda m: m.dst == pid)
        self._dropped.inc(dropped_in)
        self._crashes.inc()
        if self.tracer.enabled:
            self.tracer.event(
                "replica.crash", self.now, pid=pid,
                attrs={"drop_outgoing": drop_outgoing,
                       "dropped_inbound": dropped_in,
                       "dropped_outgoing": dropped_out},
            )

    def recover(self, pid: int, *, fsync_point: int | None = None) -> Replica:
        """Restart crashed process ``pid`` from its durable log.

        Models crash-*recovery*: the dead replica's update log is read back
        through the :mod:`repro.proto.wire` codec (the on-disk image),
        truncated to ``fsync_point`` entries if the crash beat the last
        fsync (``None`` = everything survived; the Lamport clock always
        survives, see :func:`~repro.proto.wire.replica_snapshot`).  The
        image is the v3 *journal* format — the digest-chained record
        sequence the real storage engine (:mod:`repro.storage`) reads off
        disk, so every chaos/fuzz recovery in the simulator also verifies
        the chain the networked backend depends on.  The core rebuilds a
        fresh replica from the factory, reloads it, and rejoins by
        broadcasting an anti-entropy sync request — peers send back what
        it missed while down, and pull anything only its log still has
        (its own pre-crash updates whose broadcast was lost).
        """
        self._check_pid(pid)
        if pid not in self.crashed:
            raise ValueError(f"process {pid} is not crashed")
        core = self.cores[pid]
        snapshot = core.snapshot(fsync_point=fsync_point, version=3)
        effects = core.recover(snapshot)
        self.crashed.discard(pid)
        self._recovered.inc()
        if self.tracer.enabled:
            self.tracer.event(
                "replica.recover", self.now, pid=pid,
                attrs={"fsync_point": fsync_point,
                       "restored_log": core.log_length},
            )
            if core.sync_capable:
                self.tracer.event(
                    "sync.request", self.now, pid=pid, attrs={"reason": "recover"}
                )
        # The effect batch carries the rejoin sync broadcast *and* any
        # directed sends the restore hooks queued (e.g. a subclass pulling
        # state from a peer); interpreting it ships both.
        self._apply_effects(pid, effects)
        return core.replica

    def hold(self, src: int, dst: int) -> None:
        """Park src→dst traffic; endpoints must be live processes."""
        self._check_live_endpoint(src)
        self._check_live_endpoint(dst)
        self.network.hold(src, dst)
        if self.tracer.enabled:
            self.tracer.event(
                "channel.hold", self.now, attrs={"src": src, "dst": dst}
            )

    def release(self, src: int, dst: int) -> None:
        """Release a held channel at the current virtual time."""
        self.network.release(src, dst, self.now)
        if self.tracer.enabled:
            self.tracer.event(
                "channel.release", self.now, attrs={"src": src, "dst": dst}
            )

    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Block all traffic between the given groups (until healed).

        Crashed pids are filtered out of the groups — a dead process is not
        a partition endpoint (its traffic is already dropped); the groups
        must otherwise be disjoint (validated by the network).
        """
        live = [[pid for pid in g if pid not in self.crashed] for g in groups]
        filtered = [g for g in live if g]
        self.network.partition(filtered)
        if self.tracer.enabled:
            self.tracer.event(
                "channel.partition", self.now,
                attrs={"groups": [sorted(g) for g in filtered]},
            )

    def heal(self) -> None:
        """End every partition/hold; parked messages become deliverable."""
        self.network.heal(self.now)
        if self.tracer.enabled:
            self.tracer.event("channel.heal", self.now)

    def anti_entropy(self, *, rounds: int = 3) -> int:
        """Run sync rounds until replicas agree (or ``rounds`` exhausted).

        Each round every live sync-capable replica broadcasts a
        :meth:`~repro.core.universal.UniversalReplica.sync_request` and the
        network drains.  Repairs divergence the reliable-broadcast
        machinery cannot: lossy channels, recovery amnesia.  Returns the
        number of rounds performed.
        """
        performed = 0
        for _ in range(rounds):
            requested = 0
            round_start = self.now
            for pid in self.alive():
                effects = self.cores[pid].sync_tick()
                if effects:
                    self._apply_effects(pid, effects)
                    requested += 1
                    if self.tracer.enabled:
                        self.tracer.event(
                            "sync.request", self.now, pid=pid,
                            attrs={"reason": "anti-entropy"},
                        )
            if not requested:
                break
            self.run()
            performed += 1
            if self.tracer.enabled:
                self.tracer.span(
                    "anti_entropy.round", round_start, self.now,
                    attrs={"round": performed, "requests": requested},
                )
            if len({_canonical(s) for s in self.states().values()}) <= 1:
                break
        return performed

    def heartbeat(self, pid: int) -> bool:
        """Broadcast one liveness heartbeat from ``pid`` (gossip round).

        Returns False when the replica type has no heartbeat dialect —
        ticking any process is always safe.
        """
        effects = self._live_core(pid).sync_tick("heartbeat")
        if not effects:
            return False
        self._apply_effects(pid, effects)
        return True

    # -- inspection ----------------------------------------------------------------------

    def alive(self) -> list[int]:
        """Pids of the correct (non-crashed) processes."""
        return [pid for pid in range(self.n) if pid not in self.crashed]

    def states(self) -> dict[int, Any]:
        """Local state of every correct replica."""
        return {pid: self.cores[pid].local_state() for pid in self.alive()}

    def quiescent(self) -> bool:
        """No deliverable message remains (held ones may)."""
        return self.network.peek_time() is None

    def _apply_effects(self, pid: int, effects: Iterable[Effect]) -> None:
        """Interpret one effect batch from process ``pid``'s core.

        ``Broadcast``/``Send`` map onto the simulated network at the
        current virtual time.  ``Persist`` is moot here (the sim's durable
        image is taken on demand by :meth:`recover`) and ``Timer`` is
        owned by the experiment script, so both are ignored.
        """
        broadcast = self.network.broadcast
        send = self.network.send
        now = self.now
        for eff in effects:
            cls = eff.__class__
            if cls is Broadcast:
                broadcast(pid, eff.payload, now)
            elif cls is Send:
                send(pid, eff.dst, eff.payload, now)

    def _drain_outbox(self, replica: Replica) -> None:
        """Ship directed sends queued outside the event methods.

        Compatibility shim for callers that drive a replica's hooks
        directly (the quorum object's client helpers do); cluster-internal
        paths go through the cores and :meth:`_apply_effects`.
        """
        outbox = getattr(replica, "outbox", None)
        if not outbox:
            return
        for dst, payload in outbox:
            if dst is None:
                self.network.broadcast(replica.pid, payload, self.now)
            else:
                self.network.send(replica.pid, dst, payload, self.now)
        outbox.clear()

    def _live_core(self, pid: int) -> ProtocolCore:
        self._check_pid(pid)
        if pid in self.crashed:
            raise CrashedProcessError(f"process {pid} has crashed")
        return self.cores[pid]

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self.n:
            raise ValueError(f"pid {pid} out of range for {self.n} processes")

    def _check_live_endpoint(self, pid: int) -> None:
        self._check_pid(pid)
        if pid in self.crashed:
            raise ValueError(
                f"process {pid} has crashed and cannot be a hold endpoint"
            )
