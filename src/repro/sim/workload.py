"""Reproducible workload generators and the scripted paper gadgets.

A workload is a list of :class:`WorkloadOp` — ``(time, pid, operation)``
triples, sorted by time — produced deterministically from a seed.
:func:`run_workload` drives a cluster through one: messages due before
each invocation are delivered first (the adversary is the latency model),
then the run drains to quiescence.

Generators cover the scenarios the paper's discussion implies:

* :func:`random_set_workload` — mixed insert/delete/read over a support;
* :func:`conflict_heavy_set_workload` — few elements, hot insert/delete
  races (the regime separating the CRDT zoo from the UC set);
* :func:`register_workload` — write/read over a register space
  (Algorithm 2's object);
* :func:`counter_workload` — commutative fast-path control;
* :func:`collab_edit_workload` — per-author appends to a shared log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.adt import Update
from repro.sim.cluster import Cluster
from repro.specs import counter as counter_ops
from repro.specs import log_spec as log_ops
from repro.specs import register as register_ops
from repro.specs import set_spec as set_ops


@dataclass(frozen=True, slots=True)
class WorkloadOp:
    """One scheduled invocation: at ``time``, process ``pid`` issues either
    an update (``op``) or a query (``query`` name + args)."""

    time: float
    pid: int
    op: Update | None = None
    query: str | None = None
    query_args: tuple = ()

    @property
    def is_update(self) -> bool:
        return self.op is not None


def run_workload(
    cluster: Cluster,
    workload: Sequence[WorkloadOp],
    *,
    drain: bool = True,
) -> list[Any]:
    """Execute a workload; returns the outputs of the query invocations."""
    outputs: list[Any] = []
    for item in sorted(workload, key=lambda w: w.time):
        cluster.run_until(item.time)
        if item.pid in cluster.crashed:
            continue
        if item.is_update:
            cluster.update(item.pid, item.op)
        else:
            outputs.append(cluster.query(item.pid, item.query, item.query_args))
    if drain:
        cluster.run()
    return outputs


def _times(rng: np.random.Generator, count: int, horizon: float) -> np.ndarray:
    return np.sort(rng.uniform(0.0, horizon, size=count))


def random_set_workload(
    n_processes: int,
    n_ops: int,
    *,
    support: int = 20,
    p_delete: float = 0.3,
    p_query: float = 0.2,
    horizon: float = 100.0,
    seed: int = 0,
) -> list[WorkloadOp]:
    """Uniformly mixed set operations over ``support`` values."""
    rng = np.random.default_rng(seed)
    times = _times(rng, n_ops, horizon)
    out: list[WorkloadOp] = []
    for t in times:
        pid = int(rng.integers(n_processes))
        roll = rng.random()
        if roll < p_query:
            out.append(WorkloadOp(float(t), pid, query="read"))
        else:
            v = int(rng.integers(support))
            if rng.random() < p_delete:
                out.append(WorkloadOp(float(t), pid, op=set_ops.delete(v)))
            else:
                out.append(WorkloadOp(float(t), pid, op=set_ops.insert(v)))
    return out


def conflict_heavy_set_workload(
    n_processes: int,
    n_ops: int,
    *,
    support: int = 3,
    horizon: float = 20.0,
    seed: int = 0,
) -> list[WorkloadOp]:
    """Hot insert/delete races on a tiny support — every pair of processes
    repeatedly fights over the same elements, the regime where the
    eventually consistent sets' policies visibly disagree."""
    rng = np.random.default_rng(seed)
    times = _times(rng, n_ops, horizon)
    out: list[WorkloadOp] = []
    for t in times:
        pid = int(rng.integers(n_processes))
        v = int(rng.integers(support))
        op = set_ops.insert(v) if rng.random() < 0.5 else set_ops.delete(v)
        out.append(WorkloadOp(float(t), pid, op=op))
    return out


def register_workload(
    n_processes: int,
    n_ops: int,
    *,
    registers: int = 8,
    p_read: float = 0.3,
    horizon: float = 100.0,
    seed: int = 0,
) -> list[WorkloadOp]:
    """Writes and reads over a register space (the Algorithm 2 object)."""
    rng = np.random.default_rng(seed)
    times = _times(rng, n_ops, horizon)
    out: list[WorkloadOp] = []
    for i, t in enumerate(times):
        pid = int(rng.integers(n_processes))
        x = int(rng.integers(registers))
        if rng.random() < p_read:
            out.append(WorkloadOp(float(t), pid, query="read", query_args=(x,)))
        else:
            out.append(WorkloadOp(float(t), pid, op=register_ops.mem_write(x, i)))
    return out


def counter_workload(
    n_processes: int,
    n_ops: int,
    *,
    p_dec: float = 0.4,
    p_read: float = 0.2,
    horizon: float = 100.0,
    seed: int = 0,
) -> list[WorkloadOp]:
    """Increments/decrements — the commutative control workload."""
    rng = np.random.default_rng(seed)
    times = _times(rng, n_ops, horizon)
    out: list[WorkloadOp] = []
    for t in times:
        pid = int(rng.integers(n_processes))
        roll = rng.random()
        if roll < p_read:
            out.append(WorkloadOp(float(t), pid, query="read"))
        else:
            k = int(rng.integers(1, 5))
            op = counter_ops.dec(k) if rng.random() < p_dec else counter_ops.inc(k)
            out.append(WorkloadOp(float(t), pid, op=op))
    return out


def zipf_set_workload(
    n_processes: int,
    n_ops: int,
    *,
    support: int = 100,
    zipf_a: float = 1.5,
    p_delete: float = 0.3,
    p_query: float = 0.1,
    horizon: float = 100.0,
    seed: int = 0,
) -> list[WorkloadOp]:
    """Set operations with Zipf-distributed key popularity.

    Real replicated-store traffic is heavily skewed (a few hot keys take
    most of the conflicts); a Zipf exponent of ~1.1-2 reproduces that.
    Hot keys race constantly while the long tail almost never conflicts —
    the regime where per-key policies (LWW, OR) and the global arbitration
    of the universal construction are stressed differently.
    """
    if zipf_a <= 1.0:
        raise ValueError("zipf exponent must be > 1")
    rng = np.random.default_rng(seed)
    times = _times(rng, n_ops, horizon)
    out: list[WorkloadOp] = []
    for t in times:
        pid = int(rng.integers(n_processes))
        v = int(rng.zipf(zipf_a)) % support  # fold the tail into support
        if rng.random() < p_query:
            out.append(WorkloadOp(float(t), pid, query="contains", query_args=(v,)))
        elif rng.random() < p_delete:
            out.append(WorkloadOp(float(t), pid, op=set_ops.delete(v)))
        else:
            out.append(WorkloadOp(float(t), pid, op=set_ops.insert(v)))
    return out


def collab_edit_workload(
    n_authors: int,
    n_edits: int,
    *,
    horizon: float = 60.0,
    seed: int = 0,
) -> list[WorkloadOp]:
    """Each author appends their own numbered edits to a shared log.

    Update consistency guarantees the converged document is an
    interleaving of the authors' edit sequences that preserves each
    author's own order — the "intention preservation" that collaborative
    editing systems chase (Section I's [Sun et al.] citation).
    """
    rng = np.random.default_rng(seed)
    times = _times(rng, n_edits, horizon)
    counters = [0] * n_authors
    out: list[WorkloadOp] = []
    for t in times:
        pid = int(rng.integers(n_authors))
        out.append(
            WorkloadOp(float(t), pid, op=log_ops.append(f"a{pid}.{counters[pid]}"))
        )
        counters[pid] += 1
    return out
