"""Network model: reliable, complete, asynchronous — with an adversary.

The paper's channel assumptions (Section VII-A): every pair of processes is
connected, messages between correct processes are eventually delivered, and
there is no bound on transfer delays.  The simulator realizes "no bound" as
an adversary: a pluggable :class:`LatencyModel` draws per-message delays
from a seeded generator, and explicit *holds* (used by the Proposition 1
experiment) park traffic between chosen process pairs until released —
modelling the indistinguishability argument ("p1 cannot tell a crashed p2
from one whose messages are delayed").

Partitions are symmetric holds between groups; healing releases the parked
messages, preserving reliability.  Per-channel FIFO ordering is optional:
Algorithm 1 does not need it, the pipelined-consistency baseline does.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np


@dataclass(frozen=True, slots=True)
class Message:
    """An in-flight payload with its routing and timing metadata."""

    src: int
    dst: int
    payload: Any
    sent_at: float
    deliver_at: float
    seq: int  # global sequence number: deterministic tie-breaking

    def sort_key(self) -> tuple[float, int]:
        """Deterministic delivery order: time, then global send number."""
        return (self.deliver_at, self.seq)


class LatencyModel:
    """Draws a delivery delay for each message."""

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        """The delay for one src→dst message (pure in ``rng``)."""
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Constant delay (synchronous-looking network; useful as a control)."""

    def __init__(self, value: float = 1.0) -> None:
        if value < 0:
            raise ValueError("latency must be non-negative")
        self.value = float(value)

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return self.value


class UniformLatency(LatencyModel):
    """Delay uniform in ``[low, high]`` — bounded but unpredictable."""

    def __init__(self, low: float = 0.5, high: float = 2.0) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low, self.high = float(low), float(high)

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))


class ExponentialLatency(LatencyModel):
    """Heavy-ish tail: mean ``scale``, unbounded support — the asynchronous
    model's 'no bound on transfer delays' made concrete."""

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = float(scale)

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.scale))


class Network:
    """Pending-message pool with delays, holds, partitions and FIFO option.

    Not a public entry point — :class:`repro.sim.cluster.Cluster` owns one.
    """

    def __init__(
        self,
        n: int,
        latency: LatencyModel | None = None,
        rng: np.random.Generator | None = None,
        fifo: bool = False,
    ) -> None:
        if n <= 0:
            raise ValueError("need at least one process")
        self.n = n
        self.latency = latency if latency is not None else FixedLatency(1.0)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.fifo = fifo
        self._heap: list[tuple[tuple[float, int], Message]] = []
        self._held: list[Message] = []
        self._holds: set[tuple[int, int]] = set()
        self._seq = itertools.count()
        self._last_fifo_deliver_at: dict[tuple[int, int], float] = {}
        self.sent_count = 0
        self.delivered_count = 0

    # -- sending ---------------------------------------------------------------

    def send(self, src: int, dst: int, payload: Any, now: float) -> Message:
        """Enqueue one point-to-point message; returns it for inspection."""
        self._check_pid(src)
        self._check_pid(dst)
        delay = 0.0 if src == dst else self.latency.delay(src, dst, self.rng)
        deliver_at = now + delay
        if self.fifo:
            # FIFO channels: delivery time monotone per (src, dst).
            floor = self._last_fifo_deliver_at.get((src, dst), -np.inf)
            deliver_at = max(deliver_at, floor)
            self._last_fifo_deliver_at[(src, dst)] = deliver_at
        msg = Message(src, dst, payload, now, deliver_at, next(self._seq))
        self.sent_count += 1
        if (src, dst) in self._holds:
            self._held.append(msg)
        else:
            heapq.heappush(self._heap, (msg.sort_key(), msg))
        return msg

    def broadcast(self, src: int, payload: Any, now: float) -> list[Message]:
        """One message to every *other* process.

        Algorithm 1's broadcast includes the sender, with the proof noting
        that "messages are received instantaneously by the sender"; the
        replica implementations realize that instantaneous self-delivery by
        applying their own payload inside ``on_update`` (wait-freedom: a
        process's own update is visible to its very next query), so the
        network must not deliver it a second time."""
        return [self.send(src, dst, payload, now) for dst in range(self.n) if dst != src]

    # -- delivery ---------------------------------------------------------------

    def pop_next(self) -> Message | None:
        """The next deliverable message in (deliver_at, seq) order."""
        if not self._heap:
            return None
        _, msg = heapq.heappop(self._heap)
        self.delivered_count += 1
        return msg

    def peek_time(self) -> float | None:
        """Delivery time of the next deliverable message, if any."""
        return self._heap[0][1].deliver_at if self._heap else None

    def pending_count(self) -> int:
        """In-flight messages, including held ones."""
        return len(self._heap) + len(self._held)

    def drop_messages(self, predicate: Callable[[Message], bool]) -> int:
        """Adversarially drop in-flight messages (used to model a sender
        crashing mid-broadcast).  Returns the number dropped."""
        kept = [(k, m) for k, m in self._heap if not predicate(m)]
        dropped = len(self._heap) - len(kept)
        held_kept = [m for m in self._held if not predicate(m)]
        dropped += len(self._held) - len(held_kept)
        self._heap = kept
        heapq.heapify(self._heap)
        self._held = held_kept
        return dropped

    # -- adversary: holds & partitions --------------------------------------------

    def hold(self, src: int, dst: int) -> None:
        """Park all traffic src→dst (present and future) until released."""
        self._check_pid(src)
        self._check_pid(dst)
        self._holds.add((src, dst))
        still = []
        for key, msg in self._heap:
            if (msg.src, msg.dst) == (src, dst):
                self._held.append(msg)
            else:
                still.append((key, msg))
        self._heap = still
        heapq.heapify(self._heap)

    def release(self, src: int, dst: int, now: float) -> None:
        """Stop holding src→dst; parked messages become deliverable at
        ``now`` (reliability: held ≠ lost)."""
        self._holds.discard((src, dst))
        kept: list[Message] = []
        for msg in self._held:
            if (msg.src, msg.dst) == (src, dst):
                rescheduled = Message(
                    msg.src, msg.dst, msg.payload, msg.sent_at, max(now, msg.deliver_at),
                    msg.seq,
                )
                heapq.heappush(self._heap, (rescheduled.sort_key(), rescheduled))
            else:
                kept.append(msg)
        self._held = kept

    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Hold all traffic between distinct groups (symmetric)."""
        sets = [set(g) for g in groups]
        for i, a in enumerate(sets):
            for b in sets[i + 1 :]:
                for s in a:
                    for d in b:
                        self.hold(s, d)
                        self.hold(d, s)

    def heal(self, now: float) -> None:
        """Release every hold (the partition ends; traffic resumes)."""
        for src, dst in list(self._holds):
            self.release(src, dst, now)

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self.n:
            raise ValueError(f"pid {pid} out of range for {self.n} processes")
