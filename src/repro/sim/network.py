"""Network model: reliable, complete, asynchronous — with an adversary.

The paper's channel assumptions (Section VII-A): every pair of processes is
connected, messages between correct processes are eventually delivered, and
there is no bound on transfer delays.  The simulator realizes "no bound" as
an adversary: a pluggable :class:`LatencyModel` draws per-message delays
from a seeded generator, and explicit *holds* (used by the Proposition 1
experiment) park traffic between chosen process pairs until released —
modelling the indistinguishability argument ("p1 cannot tell a crashed p2
from one whose messages are delayed").

Partitions are symmetric holds between groups; healing releases the parked
messages, preserving reliability.  Per-channel FIFO ordering is optional:
Algorithm 1 does not need it, the pipelined-consistency baseline and the
stable-prefix GC replica do.

The channel model is itself guarded: every adversary action (hold, release,
drop, partition) must preserve per-channel delivery monotonicity on FIFO
channels, and a :class:`ChannelInvariantChecker` re-asserts that invariant
on every :meth:`Network.pop_next` — a buggy adversary raises
:class:`ChannelInvariantError` instead of silently corrupting the model.
Two fault-injection subclasses weaken reliability on purpose:
:class:`LossyNetwork` (seeded message loss) and :class:`DuplicatingNetwork`
(seeded re-delivery); both keep the FIFO floors consistent.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer


def _payload_bits(payload: Any) -> int | None:
    """Wire-size estimate for trace attributes; ``None`` when the payload
    is outside :func:`~repro.analysis.metrics.payload_size_bits`'s codec."""
    from repro.analysis.metrics import payload_size_bits

    try:
        return payload_size_bits(payload)
    except TypeError:
        return None


@dataclass(frozen=True, slots=True)
class Message:
    """An in-flight payload with its routing and timing metadata."""

    src: int
    dst: int
    payload: Any
    sent_at: float
    deliver_at: float
    seq: int  # global sequence number: deterministic tie-breaking

    def sort_key(self) -> tuple[float, int]:
        """Deterministic delivery order: time, then global send number."""
        return (self.deliver_at, self.seq)


class LatencyModel:
    """Draws a delivery delay for each message."""

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        """The delay for one src→dst message (pure in ``rng``)."""
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Constant delay (synchronous-looking network; useful as a control)."""

    def __init__(self, value: float = 1.0) -> None:
        if value < 0:
            raise ValueError("latency must be non-negative")
        self.value = float(value)

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return self.value


class UniformLatency(LatencyModel):
    """Delay uniform in ``[low, high]`` — bounded but unpredictable."""

    def __init__(self, low: float = 0.5, high: float = 2.0) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low, self.high = float(low), float(high)

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))


class ExponentialLatency(LatencyModel):
    """Heavy-ish tail: mean ``scale``, unbounded support — the asynchronous
    model's 'no bound on transfer delays' made concrete."""

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = float(scale)

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.scale))


class ChannelInvariantError(AssertionError):
    """An adversary action broke the channel model (FIFO reorder)."""


class ChannelInvariantChecker:
    """Watchdog over the channel model itself.

    Observes every delivery and asserts per-channel monotonicity: on a FIFO
    channel, both the delivery time and the send sequence number must be
    non-decreasing per ``(src, dst)`` pair.  The network consults it on
    every :meth:`Network.pop_next`, so an adversary action that corrupts
    the FIFO floors (the class of bug `release()` historically had) fails
    loudly at the first out-of-order delivery instead of surfacing later
    as replica-level divergence or a spurious ``StabilityViolation``.
    """

    def __init__(self) -> None:
        #: per channel: (deliver_at, seq) of the last delivered message.
        self._last: dict[tuple[int, int], tuple[float, int]] = {}
        self.observed = 0

    def observe(self, msg: Message) -> None:
        """Record one delivery; raise on a per-channel order violation."""
        self.observed += 1
        chan = (msg.src, msg.dst)
        last = self._last.get(chan)
        if last is not None:
            last_time, last_seq = last
            if msg.deliver_at < last_time or msg.seq < last_seq:
                raise ChannelInvariantError(
                    f"FIFO violation on channel {chan}: message seq={msg.seq} "
                    f"at t={msg.deliver_at} delivered after seq={last_seq} "
                    f"at t={last_time}"
                )
        self._last[chan] = (msg.deliver_at, msg.seq)

    def last_delivery(self, src: int, dst: int) -> tuple[float, int] | None:
        """The ``(deliver_at, seq)`` of the channel's last delivery, if any."""
        return self._last.get((src, dst))


class Network:
    """Pending-message pool with delays, holds, partitions and FIFO option.

    Not a public entry point — :class:`repro.sim.cluster.Cluster` owns one.
    """

    def __init__(
        self,
        n: int,
        latency: LatencyModel | None = None,
        rng: np.random.Generator | None = None,
        fifo: bool = False,
        check_invariants: bool = True,
    ) -> None:
        if n <= 0:
            raise ValueError("need at least one process")
        self.n = n
        self.latency = latency if latency is not None else FixedLatency(1.0)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.fifo = fifo
        self._heap: list[tuple[tuple[float, int], Message]] = []
        self._held: list[Message] = []
        self._holds: set[tuple[int, int]] = set()
        self._seq = itertools.count()
        self._last_fifo_deliver_at: dict[tuple[int, int], float] = {}
        #: per channel: deliver_at of the newest message actually delivered
        #: (FIFO only; the floor below which no channel may be re-floored).
        self._last_delivered_at: dict[tuple[int, int], float] = {}
        self.invariants: ChannelInvariantChecker | None = (
            ChannelInvariantChecker() if (fifo and check_invariants) else None
        )
        #: virtual-time tracer; the cluster swaps its own in when tracing.
        self.tracer: NullTracer = NULL_TRACER
        #: observability home: private until the cluster re-binds it onto
        #: the shared per-run registry.
        self.metrics = MetricsRegistry()
        self.bind_metrics(self.metrics)

    # -- observability -----------------------------------------------------------

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """(Re-)home the network's instruments on ``registry``.

        Subclasses creating extra instruments (loss, duplication) override
        this; it runs from ``__init__`` before subclass state exists, so
        overrides may use only the registry argument.
        """
        self.metrics = registry
        self._sent = registry.counter(
            "repro_network_messages_sent_total",
            help="point-to-point sends (a broadcast is n-1 of these; "
            "Section VII-C: one broadcast per update)",
        ).labels()
        self._delivered = registry.counter(
            "repro_network_messages_delivered_total",
            help="messages handed to the cluster for delivery",
        ).labels()

    @property
    def sent_count(self) -> int:
        """Deprecated: reads ``repro_network_messages_sent_total``."""
        return int(self._sent.value)

    @property
    def delivered_count(self) -> int:
        """Deprecated: reads ``repro_network_messages_delivered_total``."""
        return int(self._delivered.value)

    # -- sending ---------------------------------------------------------------

    def send(self, src: int, dst: int, payload: Any, now: float) -> Message:
        """Enqueue one point-to-point message; returns it for inspection."""
        self._check_pid(src)
        self._check_pid(dst)
        delay = 0.0 if src == dst else self.latency.delay(src, dst, self.rng)
        deliver_at = now + delay
        if self.fifo:
            # FIFO channels: delivery time monotone per (src, dst).
            floor = self._last_fifo_deliver_at.get((src, dst), -np.inf)
            deliver_at = max(deliver_at, floor)
            self._last_fifo_deliver_at[(src, dst)] = deliver_at
        msg = Message(src, dst, payload, now, deliver_at, next(self._seq))
        self._sent.inc()
        if self.tracer.enabled:
            self.tracer.event(
                "message.send", now, pid=src,
                attrs={"dst": dst, "seq": msg.seq, "deliver_at": deliver_at,
                       "bits": _payload_bits(payload)},
            )
        self._commit(msg)
        return msg

    def _commit(self, msg: Message) -> None:
        """Hand a stamped message to the in-flight pool (or the hold pen).

        The single enqueue point: fault-injection subclasses override it to
        lose or re-deliver traffic *after* the FIFO floors were advanced,
        so their mischief can never reorder a channel.
        """
        if (msg.src, msg.dst) in self._holds:
            self._held.append(msg)
        else:
            heapq.heappush(self._heap, (msg.sort_key(), msg))

    def broadcast(self, src: int, payload: Any, now: float) -> list[Message]:
        """One message to every *other* process.

        Algorithm 1's broadcast includes the sender, with the proof noting
        that "messages are received instantaneously by the sender"; the
        replica implementations realize that instantaneous self-delivery by
        applying their own payload inside ``on_update`` (wait-freedom: a
        process's own update is visible to its very next query), so the
        network must not deliver it a second time."""
        return [self.send(src, dst, payload, now) for dst in range(self.n) if dst != src]

    # -- delivery ---------------------------------------------------------------

    def pop_next(self) -> Message | None:
        """The next deliverable message in (deliver_at, seq) order."""
        if not self._heap:
            return None
        _, msg = heapq.heappop(self._heap)
        if self.fifo:
            chan = (msg.src, msg.dst)
            if self.invariants is not None:
                self.invariants.observe(msg)
            prev = self._last_delivered_at.get(chan, -np.inf)
            self._last_delivered_at[chan] = max(prev, msg.deliver_at)
        self._delivered.inc()
        return msg

    def peek_time(self) -> float | None:
        """Delivery time of the next deliverable message, if any."""
        return self._heap[0][1].deliver_at if self._heap else None

    def pending_count(self) -> int:
        """In-flight messages, including held ones."""
        return len(self._heap) + len(self._held)

    def drop_messages(self, predicate: Callable[[Message], bool]) -> int:
        """Adversarially drop in-flight messages (used to model a sender
        crashing mid-broadcast).  Returns the number dropped.

        On FIFO channels the floors are recomputed afterwards: a floor must
        not keep pointing at a dropped message's delivery time, or the
        channel stays artificially delayed forever.
        """
        kept = [(k, m) for k, m in self._heap if not predicate(m)]
        dropped = len(self._heap) - len(kept)
        held_kept = [m for m in self._held if not predicate(m)]
        dropped += len(self._held) - len(held_kept)
        self._heap = kept
        heapq.heapify(self._heap)
        self._held = held_kept
        if self.fifo and dropped:
            self._refloor()
        return dropped

    def _refloor(self) -> None:
        """Recompute the FIFO floors from what is actually still pending.

        A channel's floor is the max of its last *delivered* time and every
        still-in-flight (or held) message's delivery time — never less, or
        a later send could be scheduled under a delivery that already
        happened; never referencing dropped traffic, or the channel drags a
        phantom delay.
        """
        floors = dict(self._last_delivered_at)
        for _, msg in self._heap:
            chan = (msg.src, msg.dst)
            if floors.get(chan, -np.inf) < msg.deliver_at:
                floors[chan] = msg.deliver_at
        for msg in self._held:
            chan = (msg.src, msg.dst)
            if floors.get(chan, -np.inf) < msg.deliver_at:
                floors[chan] = msg.deliver_at
        self._last_fifo_deliver_at = floors

    # -- adversary: holds & partitions --------------------------------------------

    def hold(self, src: int, dst: int) -> None:
        """Park all traffic src→dst (present and future) until released."""
        self._check_pid(src)
        self._check_pid(dst)
        if src == dst:
            raise ValueError(
                f"cannot hold the self-channel ({src}, {dst}): self-delivery "
                f"is instantaneous and never crosses the network"
            )
        self._holds.add((src, dst))
        still = []
        for key, msg in self._heap:
            if (msg.src, msg.dst) == (src, dst):
                self._held.append(msg)
            else:
                still.append((key, msg))
        self._heap = still
        heapq.heapify(self._heap)

    def release(self, src: int, dst: int, now: float) -> None:
        """Stop holding src→dst; parked messages become deliverable at
        ``now`` (reliability: held ≠ lost).

        On FIFO channels every rescheduled message is re-floored against
        ``_last_fifo_deliver_at`` — and pushes the floor in turn — so a
        held-then-released message can never be delivered after (or
        scheduled under) traffic sent later on the same channel.
        """
        self._holds.discard((src, dst))
        kept: list[Message] = []
        releasing: list[Message] = []
        for msg in self._held:
            (releasing if (msg.src, msg.dst) == (src, dst) else kept).append(msg)
        self._held = kept
        releasing.sort(key=lambda m: m.seq)  # channel send order
        for msg in releasing:
            deliver_at = max(now, msg.deliver_at)
            if self.fifo:
                floor = self._last_fifo_deliver_at.get((src, dst), -np.inf)
                deliver_at = max(deliver_at, floor)
                self._last_fifo_deliver_at[(src, dst)] = deliver_at
            rescheduled = Message(
                msg.src, msg.dst, msg.payload, msg.sent_at, deliver_at, msg.seq
            )
            heapq.heappush(self._heap, (rescheduled.sort_key(), rescheduled))

    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Hold all traffic between distinct groups (symmetric).

        Groups must be pairwise disjoint: an overlap would make a process a
        member of both sides of the cut, asking for the (meaningless)
        self-hold ``hold(p, p)``.
        """
        sets = [set(g) for g in groups]
        seen: set[int] = set()
        for group in sets:
            for pid in group:
                self._check_pid(pid)
            overlap = group & seen
            if overlap:
                raise ValueError(
                    f"partition groups must be disjoint; {sorted(overlap)} "
                    f"appear in more than one group"
                )
            seen |= group
        for i, a in enumerate(sets):
            for b in sets[i + 1 :]:
                for s in a:
                    for d in b:
                        self.hold(s, d)
                        self.hold(d, s)

    def heal(self, now: float) -> None:
        """Release every hold (the partition ends; traffic resumes)."""
        for src, dst in list(self._holds):
            self.release(src, dst, now)

    def dissolve_holds(self, pid: int, now: float) -> None:
        """Release every hold with ``pid`` as an endpoint.

        The crash path uses this: a dead process stops being a
        hold/partition endpoint, so traffic it already sent is released
        (subject to channel reliability) rather than stranded forever.
        Public API so the cluster never reaches into ``_holds``.
        """
        self._check_pid(pid)
        for src, dst in list(self._holds):
            if pid in (src, dst):
                self.release(src, dst, now)

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self.n:
            raise ValueError(f"pid {pid} out of range for {self.n} processes")


class LossyNetwork(Network):
    """Fault injection: each message is lost in transit with probability
    ``drop_probability`` (seeded, so runs stay reproducible).

    Loss happens at commit time, *after* the FIFO floors advanced: a lossy
    FIFO channel may skip messages but never reorders the survivors.  This
    deliberately breaks the paper's reliable-channel assumption (Section
    VII-A) — Algorithm 1 alone no longer converges; the epidemic relay
    (``UniversalReplica(relay=True)``) or the cluster's anti-entropy sync
    restores agreement among what did get through.
    """

    def __init__(
        self,
        n: int,
        latency: LatencyModel | None = None,
        rng: np.random.Generator | None = None,
        fifo: bool = False,
        check_invariants: bool = True,
        *,
        drop_probability: float = 0.1,
    ) -> None:
        super().__init__(n, latency, rng, fifo, check_invariants)
        if not 0 <= drop_probability <= 1:
            raise ValueError(f"drop probability must be in [0, 1], got {drop_probability}")
        self.drop_probability = drop_probability

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        super().bind_metrics(registry)
        self._lost = registry.counter(
            "repro_network_messages_lost_total",
            help="messages dropped in transit by the lossy-channel adversary",
        ).labels()

    @property
    def lost_count(self) -> int:
        """Deprecated: reads ``repro_network_messages_lost_total``."""
        return int(self._lost.value)

    def _commit(self, msg: Message) -> None:
        if msg.src != msg.dst and self.rng.random() < self.drop_probability:
            self._lost.inc()
            if self.tracer.enabled:
                self.tracer.event(
                    "message.lost", msg.sent_at, pid=msg.src,
                    attrs={"dst": msg.dst, "seq": msg.seq},
                )
            return
        super()._commit(msg)


class DuplicatingNetwork(Network):
    """Fault injection: each message is re-delivered a second time with
    probability ``duplicate_probability`` (seeded).

    The duplicate is a genuine extra transmission: it gets its own sequence
    number and a fresh latency draw on top of the original delivery time,
    and on FIFO channels it is floored (and pushes the floor), so it
    arrives after the original and never reorders the channel.  Replicas
    must deduplicate (Algorithm 1's ``(clock, pid)`` keys do).
    """

    def __init__(
        self,
        n: int,
        latency: LatencyModel | None = None,
        rng: np.random.Generator | None = None,
        fifo: bool = False,
        check_invariants: bool = True,
        *,
        duplicate_probability: float = 0.1,
    ) -> None:
        super().__init__(n, latency, rng, fifo, check_invariants)
        if not 0 <= duplicate_probability <= 1:
            raise ValueError(
                f"duplicate probability must be in [0, 1], got {duplicate_probability}"
            )
        self.duplicate_probability = duplicate_probability

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        super().bind_metrics(registry)
        self._duplicated = registry.counter(
            "repro_network_messages_duplicated_total",
            help="extra deliveries injected by the duplicating adversary",
        ).labels()

    @property
    def duplicated_count(self) -> int:
        """Deprecated: reads ``repro_network_messages_duplicated_total``."""
        return int(self._duplicated.value)

    def _commit(self, msg: Message) -> None:
        super()._commit(msg)
        if msg.src != msg.dst and self.rng.random() < self.duplicate_probability:
            deliver_at = msg.deliver_at + self.latency.delay(msg.src, msg.dst, self.rng)
            if self.fifo:
                floor = self._last_fifo_deliver_at.get((msg.src, msg.dst), -np.inf)
                deliver_at = max(deliver_at, floor)
                self._last_fifo_deliver_at[(msg.src, msg.dst)] = deliver_at
            dup = Message(
                msg.src, msg.dst, msg.payload, msg.sent_at, deliver_at, next(self._seq)
            )
            self._duplicated.inc()
            if self.tracer.enabled:
                self.tracer.event(
                    "message.duplicated", msg.sent_at, pid=msg.src,
                    attrs={"dst": msg.dst, "seq": dup.seq, "of_seq": msg.seq},
                )
            super()._commit(dup)
