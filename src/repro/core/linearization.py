"""Linearizations of distributed histories (Definition 3) and membership in
a sequential specification ``L(O)``.

A linearization of ``H`` is a word over the event labels containing every
event exactly once, in an order consistent with the program order.  The
consistency criteria all reduce to questions of the form
``lin(H') ∩ L(O) ≠ ∅`` for various projections ``H'`` of ``H``; this module
implements that test, including the ω-semantics described in
:mod:`repro.core.history`:

* every non-ω event is placed exactly once, respecting program order;
* an ω-query stands for infinitely many copies — since the history has
  finitely many updates, cofinitely many copies follow the last update, so
  the test requires the *final* state (after all updates of the projection)
  to satisfy every ω-query.  Placing all copies after every finite event is
  always consistent with program order because ω-events are maximal;
* ω-updates make the update set infinite; the membership question is then
  ill-posed for a finite encoding and callers (the criteria) must
  special-case it — we raise to surface misuse.

The enumeration is exact and exponential; it is meant for the paper's small
example histories and for property tests on randomly generated histories of
bounded size.  Simulator traces are never checked this way — they are
checked against the *witness* order that the algorithms construct (see
:mod:`repro.core.criteria.witness`).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.adt import Operation, Query, UQADT, Update
from repro.core.history import Event, History
from repro.util import ordering


class OmegaUpdateError(ValueError):
    """Raised when a finite-linearization question is asked of a history
    with ω-updates (an infinite update set)."""


def linearizations(history: History) -> Iterator[tuple[Event, ...]]:
    """Enumerate the linearizations of ``history`` as event tuples.

    ω-events are emitted once, at a position consistent with the program
    order; interpret them as "the suffix starts here".  Use
    :func:`sequential_membership` for ``L(O)`` questions, which applies the
    correct ω state semantics.
    """
    yield from ordering.topological_sorts(history.program_order)


def is_linearization(history: History, seq: Sequence[Event]) -> bool:
    """True iff ``seq`` enumerates ``history``'s events respecting ↦."""
    return ordering.sequence_respects(history.program_order, seq)


def labels(seq: Sequence[Event]) -> tuple[Operation, ...]:
    """Project an event sequence to its operation labels (``Λ``)."""
    return tuple(e.label for e in seq)


def sequential_membership(
    history: History,
    spec: UQADT,
    *,
    return_witness: bool = False,
) -> bool | tuple[bool, tuple[Event, ...] | None]:
    """Decide ``lin(H) ∩ L(O) ≠ ∅`` under ω-semantics.

    With ``return_witness=True`` also returns a witness linearization of the
    finite events (or ``None``); the full infinite word is that witness
    followed by the ω-suffix.
    """
    if history.has_infinite_updates:
        raise OmegaUpdateError(
            "membership in L(O) is not decidable on a finite encoding with "
            "ω-updates; the criteria special-case infinite update sets"
        )
    omega_queries = [e.label for e in history.omega_events if e.is_query]
    finite = history.without(history.omega_events)

    for seq in ordering.topological_sorts(finite.program_order):
        state = spec.initial_state()
        ok = True
        for ev in seq:
            op = ev.label
            if isinstance(op, Update):
                state = spec.apply(state, op)
            elif isinstance(op, Query):
                if not spec.satisfies(state, op):
                    ok = False
                    break
        if ok and all(spec.satisfies(state, q) for q in omega_queries):
            if return_witness:
                return True, tuple(seq)
            return True
    if return_witness:
        return False, None
    return False


def update_linearization_states(history: History, spec: UQADT) -> set:
    """Canonical final states over all linearizations of ``H``'s updates.

    This is the set of states an update-consistent implementation may
    converge to (the paper enumerates them for Fig. 1b: ∅, {1} and {2}).
    """
    if history.has_infinite_updates:
        raise OmegaUpdateError("infinite update set has no final state")
    updates_only = history.restrict(history.updates)
    states = set()
    for seq in ordering.topological_sorts(updates_only.program_order):
        state = spec.initial_state()
        for ev in seq:
            state = spec.apply(state, ev.label)
        states.add(spec.canonical(state))
    return states


def count_linearizations(history: History, limit: int = 1_000_000) -> int:
    """Number of linearizations, capped at ``limit`` (diagnostics)."""
    return ordering.linear_extension_count(history.program_order, limit)
