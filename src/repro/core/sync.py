"""Anti-entropy v2: compact digests, paged responses, state transfer.

The v1 handshake shipped ``frozenset(self._known)`` — every update id the
replica had ever seen, O(total updates) bits per sync request.  Section
VII-C's complexity stance ("each message only contains the information to
identify the update and a timestamp") and the ROADMAP's heavy-traffic
north star both demand a summary whose size tracks the *live* window, not
the history.  This module defines that summary and the wire tags of the
v2 handshake; the replica-side behaviour lives in
:class:`repro.core.universal.UniversalReplica` (digest construction,
paging) and :class:`repro.core.checkpoint.GarbageCollectedReplica`
(completeness floors, state transfer).

A :class:`SyncDigest` describes a replica's knowledge per author process
``j`` as

* a **floor** — "I know *every* update authored by ``j`` with Lamport
  clock ``<= floors[j]``".  Floors are completeness claims and are only
  sound where the replica can actually certify completeness: a
  garbage-collected replica's ``heard`` vector over reliable FIFO
  channels (per-sender delivery order + Lamport monotonicity — the same
  argument that makes the stable prefix stable).  Plain replicas always
  advertise floor 0.
* an **exception set** above the floor — maximal runs ``(lo, hi)`` of
  *consecutive integer clocks* the replica knows from ``j``.  Every
  integer inside a run is a real update id (runs are built from the known
  set), so a responder may enumerate them.

Lamport clocks stride under merges, so interval runs alone are not a
compact encoding of a long history — the floors are what keep a
garbage-collected replica's digest at O(n_procs + stragglers): everything
at or below ``heard[j]`` collapses into one integer, and only ids learned
out-of-band (paged in by a previous sync round, hence above ``heard``)
remain as exceptions.

Wire formats (all tuples tagged with a leading string, like the v1
handshake, so they can never be confused with ``(clock, pid, update)``
triples):

* ``(SYNC_REQ, requester, floors, intervals, accepts_state)`` — v2
  request; v1's ``(SYNC_REQ, requester, frozenset_of_ids)`` is still
  parsed (as an all-floors-zero digest that cannot accept state).
* ``(SYNC_RESP, (stamped, ...))`` — one bounded page of missing updates;
  a repair that used to be one unbounded message is now a sequence of
  independent pages (no reassembly protocol: each page folds through the
  normal dedup/insert path).
* ``(SYNC_STATE, sender, {"base", "clock_floor", "frontier", "heard"})``
  — state transfer: the responder's compacted base state and the
  completeness floor it certifies, sent when the requester is missing
  updates the responder has already folded away and can no longer
  enumerate.  Since the storage engine landed, the payload also carries
  a ``digest`` — the same integrity-tag idea as the journal's rolling
  digest chain, computed over the canonical handoff content — which the
  receiver verifies before installing (a truncated or bit-rotted base
  handoff is refused, not silently folded in).  Payloads without the
  field (older senders) still parse.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator

#: control-payload tags of the anti-entropy handshake.
SYNC_REQ = "sync-req"
SYNC_RESP = "sync-resp"
SYNC_STATE = "sync-state"

#: Coalesced runs of consecutive integer clocks: ``((lo, hi), ...)``.
Intervals = tuple[tuple[int, int], ...]


class SyncProtocolError(RuntimeError):
    """A sync payload violated the anti-entropy protocol."""


class StateTransferRequired(SyncProtocolError):
    """The requester is missing updates at or below the responder's GC
    floor, which the responder has folded into its base state and cannot
    enumerate — only a state transfer can repair it, and the requester's
    digest declared it cannot install one (``accepts_state=False``).

    Before v2 this was the silent-divergence path: ``_on_sync_request``
    served whatever was still in the live log and dropped the rest on the
    floor.
    """


def coalesce(clocks: Iterable[int]) -> Intervals:
    """Maximal runs of consecutive integers, as ``((lo, hi), ...)``."""
    runs: list[tuple[int, int]] = []
    lo = hi = None
    for c in sorted(set(clocks)):
        if hi is not None and c == hi + 1:
            hi = c
            continue
        if lo is not None:
            runs.append((lo, hi))
        lo = hi = c
    if lo is not None:
        runs.append((lo, hi))
    return tuple(runs)


@dataclass(frozen=True)
class SyncDigest:
    """A replica's knowledge summary: per-author floors + exception runs."""

    floors: tuple[int, ...]
    intervals: tuple[Intervals, ...]
    accepts_state: bool = False

    def __post_init__(self) -> None:
        if len(self.floors) != len(self.intervals):
            raise SyncProtocolError(
                f"digest floors ({len(self.floors)}) and intervals "
                f"({len(self.intervals)}) disagree on the process count"
            )

    @property
    def n(self) -> int:
        return len(self.floors)

    @classmethod
    def from_uids(
        cls,
        uids: Iterable[tuple[int, int]],
        n: int,
        *,
        floors: tuple[int, ...] | None = None,
        accepts_state: bool = False,
    ) -> "SyncDigest":
        """Digest a set of known ``(clock, pid)`` ids, keeping only ids
        strictly above the given floors as exception runs."""
        if floors is None:
            floors = (0,) * n
        per_pid: list[list[int]] = [[] for _ in range(n)]
        for cl, j in uids:
            if cl > floors[j]:
                per_pid[j].append(cl)
        return cls(
            floors=tuple(floors),
            intervals=tuple(coalesce(clocks) for clocks in per_pid),
            accepts_state=accepts_state,
        )

    # -- queries ------------------------------------------------------------------

    def covers(self, cl: int, j: int) -> bool:
        """Does this digest claim knowledge of update id ``(cl, j)``?"""
        if cl <= self.floors[j]:
            return True
        for lo, hi in self.intervals[j]:
            if lo > cl:
                return False
            if cl <= hi:
                return True
        return False

    def coverage_floor(self, j: int) -> int:
        """The largest clock ``C`` such that this digest claims *every*
        ``j``-update with clock ``<= C`` (floor extended by any exception
        runs adjacent to it)."""
        floor = self.floors[j]
        for lo, hi in self.intervals[j]:
            if lo > floor + 1:
                break
            floor = max(floor, hi)
        return floor

    def exceptions(self) -> Iterator[tuple[int, int]]:
        """Every above-floor id the digest claims, as ``(clock, pid)``.
        Each one is a real update id (runs are built from a known set)."""
        for j, runs in enumerate(self.intervals):
            for lo, hi in runs:
                for cl in range(lo, hi + 1):
                    yield (cl, j)

    # -- wire codec ---------------------------------------------------------------

    def request_payload(self, requester: int) -> tuple:
        """The v2 sync-request wire tuple for this digest."""
        return (SYNC_REQ, requester, self.floors, self.intervals,
                self.accepts_state)


def parse_sync_request(payload: tuple) -> tuple[int, SyncDigest]:
    """``(requester, digest)`` from a v1 or v2 sync-request payload.

    v1 requests (``(SYNC_REQ, pid, frozenset_of_ids)``) are upgraded to an
    all-floors-zero digest that cannot accept a state transfer — exactly
    the claims a v1 known-set makes.
    """
    if not (isinstance(payload, tuple) and payload and payload[0] == SYNC_REQ):
        raise SyncProtocolError(f"not a sync request: {payload!r}")
    if len(payload) == 3 and isinstance(payload[2], (set, frozenset)):
        requester = int(payload[1])
        known = payload[2]
        n = max((j for _, j in known), default=requester) + 1
        n = max(n, requester + 1)
        return requester, SyncDigest.from_uids(known, n)
    if len(payload) == 5:
        _, requester, floors, intervals, accepts_state = payload
        return int(requester), SyncDigest(
            floors=tuple(int(f) for f in floors),
            intervals=tuple(
                tuple((int(lo), int(hi)) for lo, hi in runs)
                for runs in intervals
            ),
            accepts_state=bool(accepts_state),
        )
    raise SyncProtocolError(f"malformed sync request: {payload!r}")


def pages(entries: list, page_size: int) -> Iterator[tuple]:
    """Split a missing-update list into bounded sync-resp batches."""
    if page_size <= 0:
        raise ValueError("sync page size must be positive")
    for start in range(0, len(entries), page_size):
        yield tuple(entries[start:start + page_size])


def _stable_repr(value: object) -> str:
    """A process-independent textual form of common state shapes.

    ``repr`` alone is not enough: frozenset/dict iteration order depends
    on the string hash seed, which differs between the two *processes* a
    networked handoff crosses.  Sets and dict items are therefore sorted
    by their own stable form; lists and tuples keep order.
    """
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_stable_repr(v) for v in value)) + "}"
    if isinstance(value, dict):
        items = sorted(
            _stable_repr(k) + ":" + _stable_repr(v) for k, v in value.items()
        )
        return "{" + ",".join(items) + "}"
    if isinstance(value, (list, tuple)):
        return "(" + ",".join(_stable_repr(v) for v in value) + ")"
    return repr(value)


def handoff_digest(
    base: object,
    clock_floor: int,
    frontier: tuple[int, int] | None,
    heard: Iterable[int],
) -> str:
    """Integrity tag of a state-transfer handoff.

    Hashes a canonical, process-independent form of the handoff content
    (insertion order and container identity must not leak into the tag —
    the receiver recomputes it from a decoded payload).  This is the
    anti-entropy twin of the journal's rolling digest: the compacted base
    travels between replicas with the same tamper evidence it has on
    disk.
    """
    canon = _stable_repr((base, int(clock_floor), frontier, tuple(heard)))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class StateHandoff:
    """Decoded contents of a ``SYNC_STATE`` payload.

    ``digest`` is the sender's :func:`handoff_digest` over the other
    fields; ``None`` only for payloads from pre-digest senders.
    """

    base: object
    clock_floor: int
    frontier: tuple[int, int] | None
    heard: tuple[int, ...] = field(default=())
    #: integrity metadata, not identity — two handoffs with the same
    #: content are equal whether or not a digest travelled with them.
    digest: str | None = field(default=None, compare=False)

    def payload(self, sender: int) -> tuple:
        return (SYNC_STATE, sender, {
            "base": self.base,
            "clock_floor": self.clock_floor,
            "frontier": self.frontier,
            "heard": tuple(self.heard),
            "digest": self.digest if self.digest is not None else handoff_digest(
                self.base, self.clock_floor, self.frontier, self.heard
            ),
        })

    @classmethod
    def parse(cls, payload: tuple) -> tuple[int, "StateHandoff"]:
        if not (
            isinstance(payload, tuple)
            and len(payload) == 3
            and payload[0] == SYNC_STATE
            and isinstance(payload[2], dict)
        ):
            raise SyncProtocolError(f"malformed state transfer: {payload!r}")
        state = payload[2]
        frontier = state.get("frontier")
        handoff = cls(
            base=state["base"],
            clock_floor=int(state["clock_floor"]),
            frontier=None if frontier is None else
            (int(frontier[0]), int(frontier[1])),
            heard=tuple(int(h) for h in state.get("heard", ())),
            digest=None if state.get("digest") is None else str(state["digest"]),
        )
        if handoff.digest is not None and handoff.digest != handoff_digest(
            handoff.base, handoff.clock_floor, handoff.frontier, handoff.heard
        ):
            raise SyncProtocolError(
                f"state transfer from {payload[1]} failed its integrity "
                f"digest ({handoff.digest}): refusing to install a damaged "
                "base segment"
            )
        return int(payload[1]), handoff
