"""Strong eventual consistency for the Insert-wins set (Definition 10).

The Insert-wins set is the concurrent specification of the OR-set: an
element is present in a read iff some visible insertion of it is not
vis-before any visible deletion of it.  Formally, for every value ``x`` and
query ``q`` labelled ``R/s``::

    x ∈ s  ⟺  ∃u ∈ vis(q, I(x)) . ∀u' ∈ vis(q, D(x)) . u ̸→ᵛⁱˢ u'

Unlike the other criteria, this one *reads the visibility relation between
updates*, so the search enumerates, in addition to the query visibility
sets, an orientation (``→``, ``←`` or concurrent) for every same-element
insert/delete pair not already ordered by the program order, closing the
result under growth and checking acyclicity.

Proposition 3 states every history SUC for the set is SEC for the
Insert-wins set — property-tested in ``tests/core/criteria``.
"""

from __future__ import annotations

import itertools

from repro.core.adt import UQADT
from repro.core.history import Event, History
from repro.core.criteria.base import CheckResult, Criterion, VisibilityProblem


class InsertWinsSEC(Criterion):
    """Definition 10.  Witness: query visibility (``"visibility"``), the
    update-update visibility closure (``"update_vis"``: set of event pairs)
    and per-group states (``"group_states"``)."""

    name = "IW-SEC"

    def check(self, history: History, spec: UQADT) -> CheckResult:
        problem = VisibilityProblem.build(history)
        updates = history.updates

        po = history.program_order_closure
        base_pairs = {
            (a, b) for a in updates for b in updates if a is not b and history.precedes(a, b)
        }

        # Same-element insert/delete pairs not ordered by the program order:
        # their vis orientation is a free choice of the witness.
        free_pairs: list[tuple[Event, Event]] = []
        for a, b in itertools.combinations(updates, 2):
            if history.precedes(a, b) or history.precedes(b, a):
                continue
            la, lb = a.label, b.label
            if la.args != lb.args:
                continue
            if {la.name, lb.name} == {"insert", "delete"}:
                free_pairs.append((a, b))

        for choice in itertools.product((0, 1, 2), repeat=len(free_pairs)):
            pairs = set(base_pairs)
            for (a, b), c in zip(free_pairs, choice):
                if c == 1:
                    pairs.add((a, b))
                elif c == 2:
                    pairs.add((b, a))
            update_vis = _growth_close(pairs, updates, po)
            if update_vis is None:
                continue  # cyclic

            result = self._search_queries(history, spec, problem, update_vis)
            if result is not None:
                visibility, states = result
                return CheckResult(
                    True,
                    self.name,
                    witness={
                        "visibility": visibility,
                        "update_vis": update_vis,
                        "group_states": states,
                    },
                )
        return CheckResult(
            False,
            self.name,
            reason="no visibility relation satisfies strong convergence plus insert-wins",
        )

    def _search_queries(self, history, spec, problem, update_vis):
        # When u →ᵛⁱˢ u' and u' ↦⁺ q, growth forces u ∈ Vis(q).
        extra_mandatory: dict[Event, set[Event]] = {q: set() for q in problem.queries}
        for u, u2 in update_vis:
            for q in problem.queries:
                if history.precedes(u2, q):
                    extra_mandatory[q].add(u)

        def admissible(q, vis, partial) -> bool:
            if not extra_mandatory[q] <= vis:
                return False
            if not _insert_wins_ok(q, vis, update_vis):
                return False
            constraints = [p.label for p, pv in partial.items() if pv == vis]
            constraints.append(q.label)
            return spec.solve_state(constraints) is not None

        for assignment in problem.assignments(admissible=admissible):
            groups: dict[frozenset, list] = {}
            for q, vis in assignment.items():
                groups.setdefault(vis, []).append(q.label)
            states = {}
            ok = True
            for vis, constraints in groups.items():
                s = spec.solve_state(constraints)
                if s is None:  # pragma: no cover - pruned earlier
                    ok = False
                    break
                states[vis] = s
            if ok:
                return assignment, states
        return None


def _growth_close(
    pairs: set[tuple[Event, Event]],
    updates: tuple[Event, ...],
    po_closure,
) -> set[tuple[Event, Event]] | None:
    """Close update-update vis under growth; return ``None`` if cyclic.

    Growth: ``u →ᵛⁱˢ u' ∧ u' ↦ u'' ⇒ u →ᵛⁱˢ u''`` (for update targets).
    """
    vis = set(pairs)
    changed = True
    while changed:
        changed = False
        for u, u2 in list(vis):
            for u3 in po_closure.get(u2, ()):
                if isinstance(u3, Event) and u3.is_update and (u, u3) not in vis and u is not u3:
                    vis.add((u, u3))
                    changed = True
    # Acyclicity (vis is not required to be transitive, so walk the digraph).
    adjacency: dict[Event, set[Event]] = {u: set() for u in updates}
    for a, b in vis:
        adjacency[a].add(b)
    from repro.util.ordering import is_acyclic

    if not is_acyclic(adjacency):
        return None
    return vis


def _insert_wins_ok(q: Event, vis: frozenset[Event], update_vis) -> bool:
    """Check Definition 10's presence condition for a read query."""
    label = q.label
    if label.name != "read":
        # contains(v)/b is checked against the single value v.
        if label.name == "contains":
            (x,) = label.args
            return _present(x, vis, update_vis) == label.output
        return True
    observed = set(label.output)
    values = {u.label.args[0] for u in vis if u.label.name in ("insert", "delete")}
    for x in values | observed:
        if _present(x, vis, update_vis) != (x in observed):
            return False
    return True


def _present(x, vis: frozenset[Event], update_vis) -> bool:
    inserts = [u for u in vis if u.label.name == "insert" and u.label.args == (x,)]
    deletes = [u for u in vis if u.label.name == "delete" and u.label.args == (x,)]
    for u in inserts:
        if all((u, u2) not in update_vis for u2 in deletes):
            return True
    return False
