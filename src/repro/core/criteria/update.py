"""Update consistency (Definition 8) and strong update consistency
(Definition 9) — the paper's new criteria.

UC: the update set is infinite, or a finite set of queries can be removed
so that the remaining history linearizes into the sequential
specification.  Since removing queries only helps, on the finite encoding
UC reduces to: some linearization of (updates ∪ ω-queries) is recognized —
i.e. the converged state must be *explained by a linearization of all
updates containing the program order* (this is the difference with EC,
whose consistent state may be unreachable).

SUC: strengthens both UC and SEC — there must exist a visibility relation
(as in SEC) *and* a total arbitration order ``≤`` containing it, such that
every query is the result of replaying exactly its visible updates in
``≤`` order.  The checker enumerates candidate arbitrations (topological
sorts of the program order) and, for each, searches visibility assignments
pruned by the per-query replay test.
"""

from __future__ import annotations

from repro.core.adt import UQADT, Update
from repro.core.history import History
from repro.core.linearization import sequential_membership
from repro.util.ordering import topological_sorts
from repro.core.criteria.base import CheckResult, Criterion, VisibilityProblem


class UpdateConsistency(Criterion):
    """Definition 8.  Witness: the update linearization (``"linearization"``,
    an event tuple) and the converged state (``"state"``)."""

    name = "UC"

    def check(self, history: History, spec: UQADT) -> CheckResult:
        if history.has_infinite_updates:
            return CheckResult(True, self.name, reason="infinitely many updates")
        kept = set(history.updates) | {e for e in history.omega_events if e.is_query}
        sub = history.restrict(kept)
        ok, lin = sequential_membership(sub, spec, return_witness=True)
        if not ok:
            return CheckResult(
                False,
                self.name,
                reason=(
                    "no linearization of the updates explains the ω-queries: "
                    + ", ".join(str(e.label) for e in history.omega_events if e.is_query)
                ),
            )
        state = spec.replay(e.label for e in lin)
        return CheckResult(
            True, self.name, witness={"linearization": lin, "state": state}
        )


class StrongUpdateConsistency(Criterion):
    """Definition 9.  Witness: the arbitration (``"order"``: event tuple,
    a linear extension of the program order) and the visibility assignment
    (``"visibility"``: query event -> frozenset of update events)."""

    name = "SUC"

    def check(self, history: History, spec: UQADT) -> CheckResult:
        problem = VisibilityProblem.build(history)

        for seq in topological_sorts(history.program_order):
            pos = {e: i for i, e in enumerate(seq)}

            def admissible(q, vis, partial, pos=pos) -> bool:
                if any(pos[u] > pos[q] for u in vis):
                    return False  # vis must be contained in ≤
                word: list = [u.label for u in sorted(vis, key=pos.__getitem__)]
                word.append(q.label)
                return spec.recognizes(word)

            for assignment in problem.assignments(admissible=admissible):
                return CheckResult(
                    True,
                    self.name,
                    witness={"order": tuple(seq), "visibility": assignment},
                )
        return CheckResult(
            False,
            self.name,
            reason="no arbitration/visibility pair satisfies strong sequential convergence",
        )
