"""Polynomial-time verification of strong-update-consistency witnesses.

Proposition 4 proves Algorithm 1 correct by *constructing* the visibility
relation (message receipt) and the arbitration (the ``(clock, pid)``
lexicographic order) and verifying Definition 9's conditions.  The
simulator's replicas record exactly these structures while running, so
traces of arbitrary size are checked here in polynomial time — no
exponential search.

This is the honest division of labour for an NP-hard criterion: exact
search for tiny histories (:mod:`repro.core.criteria.update`), witness
verification for real executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.adt import UQADT, Update
from repro.core.history import Event, History
from repro.core.criteria.base import CheckResult


@dataclass(frozen=True, slots=True)
class SUCWitness:
    """The two existential structures of Definition 9.

    ``order`` — the arbitration ``≤`` as a sequence of all events (smallest
    first), e.g. Algorithm 1's ``(clock, pid)`` sort.
    ``visibility`` — for each query event, the set of update events visible
    to it (for Algorithm 1: the updates whose messages the replica had
    received when the query executed).
    """

    order: tuple[Event, ...]
    visibility: Mapping[Event, frozenset[Event]]


def verify_suc_witness(
    history: History,
    spec: UQADT,
    witness: SUCWitness,
) -> CheckResult:
    """Check Definition 9's conditions for the supplied witness.

    Conditions verified:

    1. ``order`` enumerates every event exactly once and is a linear
       extension of the program order (``≤ ⊇ vis ⊇ ↦``);
    2. visibility contains the program order: every update that
       program-order-precedes a query is visible to it;
    3. growth: visibility is monotone along the program order between
       queries;
    4. containment in the arbitration: every visible update precedes the
       query in ``order``;
    5. eventual delivery on the finite encoding: every update is visible
       to every ω-query;
    6. strong sequential convergence: replaying each query's visible
       updates in arbitration order, then the query, is recognized.
    """
    name = "SUC(witness)"
    order = witness.order
    if len(order) != len(history.events) or set(order) != set(history.events):
        return CheckResult(False, name, reason="order does not enumerate the events")
    pos = {e: i for i, e in enumerate(order)}
    for a in history.events:
        for b in history.events:
            if a is not b and history.precedes(a, b) and pos[a] > pos[b]:
                return CheckResult(
                    False, name, reason=f"order contradicts program order: {b} before {a}"
                )

    updates = set(history.updates)
    vis = {q: frozenset(witness.visibility.get(q, frozenset())) for q in history.queries}

    for q in history.queries:
        v = vis[q]
        if not v <= updates:
            return CheckResult(False, name, reason=f"{q} sees non-update events")
        for u in updates:
            if history.precedes(u, q) and u not in v:
                return CheckResult(
                    False,
                    name,
                    reason=f"visibility misses program order: {u} ↦ {q} but not visible",
                )
        for u in v:
            if pos[u] > pos[q]:
                return CheckResult(
                    False,
                    name,
                    reason=f"visibility not contained in arbitration: {u} after {q}",
                )
        if q.omega and v != frozenset(updates):
            return CheckResult(
                False,
                name,
                reason=f"eventual delivery violated: ω-query {q} misses updates",
            )

    for q1 in history.queries:
        for q2 in history.queries:
            if q1 is not q2 and history.precedes(q1, q2) and not vis[q1] <= vis[q2]:
                return CheckResult(
                    False,
                    name,
                    reason=f"growth violated between {q1} and {q2}",
                )

    for q in history.queries:
        word: list = [u.label for u in sorted(vis[q], key=pos.__getitem__)]
        word.append(q.label)
        if not spec.recognizes(word):
            return CheckResult(
                False,
                name,
                reason=(
                    f"strong sequential convergence violated at {q}: replaying "
                    f"{len(word) - 1} visible updates does not explain the output"
                ),
            )
    return CheckResult(True, name, witness={"order": order, "visibility": vis})


def arbitration_from_timestamps(
    history: History,
    timestamps: Mapping[Event, tuple[int, int]],
) -> tuple[Event, ...]:
    """Build the arbitration order from ``(clock, pid)`` stamps.

    This is exactly the ``≤`` of Proposition 4's proof; ties are impossible
    when stamps come from a correct Lamport clock (same pid ⇒ different
    clock), and we fail loudly otherwise.
    """
    stamps = [timestamps[e] for e in history.events]
    if len(set(stamps)) != len(stamps):
        raise ValueError("duplicate (clock, pid) timestamps: not a total order")
    return tuple(sorted(history.events, key=lambda e: timestamps[e]))
