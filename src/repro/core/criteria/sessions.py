"""Session guarantees, checked constructively on simulator traces.

The classic per-client guarantees [Terry et al., "Session Guarantees for
Weakly Consistent Replicated Data"] decompose the PRAM family the paper's
Section IV builds on:

* **read your writes** (RYW) — a process's query sees all of that
  process's earlier updates;
* **monotonic reads** (MR) — a process's successive queries see
  non-shrinking update sets;
* **monotonic writes** (MW) — a process's updates take effect everywhere
  in the order it issued them;
* **writes follow reads** (WFR) — an update is ordered after the updates
  its issuer had read.

On traces with per-query visibility metadata (what Algorithm-1-family
replicas record) RYW/MR are direct set checks; MW/WFR are checks on the
agreed arbitration (timestamps).  Algorithm 1 satisfies all four by
construction (log growth + Lamport causality), which the tests assert;
systems without per-process logs (e.g. a replica answering from a remote
cache) would fail them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.criteria.base import CheckResult

if TYPE_CHECKING:  # pragma: no cover - annotation-only (avoids a cycle:
    # the sim layer imports the criteria package)
    from repro.sim.cluster import Trace


def _visibility(trace: "Trace"):
    """(per-record timestamp, per-query visible-uid set) or raise.

    A GC replica reports the folded prefix as a ``visible_floor``
    (completeness claim: every update with clock at or below it is in the
    base state) rather than enumerating its uids; the floor is expanded
    here against all update timestamps in the trace.
    """
    timestamps = {}
    update_uids = set()
    for r in trace.records:
        ts = r.meta.get("timestamp")
        if ts is None:
            raise ValueError(
                f"record {r.eid} lacks timestamp metadata; session checks "
                f"need a witness-tracking replica"
            )
        timestamps[r.eid] = tuple(ts)
        if r.is_update:
            update_uids.add(tuple(ts))
    visible = {}
    for r in trace.records:
        if r.is_update:
            continue
        vis = r.meta.get("visible")
        if vis is None:
            raise ValueError(f"query record {r.eid} lacks visibility metadata")
        seen = {tuple(u) for u in vis}
        floor = int(r.meta.get("visible_floor", 0) or 0)
        if floor:
            seen.update(uid for uid in update_uids if uid[0] <= floor)
        visible[r.eid] = frozenset(seen)
    return timestamps, visible


def read_your_writes(trace: "Trace") -> CheckResult:
    """Every query sees all earlier updates of its own process."""
    name = "RYW"
    timestamps, visible = _visibility(trace)
    own: dict[int, set] = {}
    for r in trace.records:
        if r.is_update:
            own.setdefault(r.pid, set()).add(timestamps[r.eid])
        else:
            missing = own.get(r.pid, set()) - visible[r.eid]
            if missing:
                return CheckResult(
                    False, name,
                    reason=f"query {r.eid} at p{r.pid} misses own updates {missing}",
                )
    return CheckResult(True, name)


def monotonic_reads(trace: "Trace") -> CheckResult:
    """Per process, successive queries see non-shrinking update sets."""
    name = "MR"
    _, visible = _visibility(trace)
    last: dict[int, frozenset] = {}
    for r in trace.records:
        if r.is_update:
            continue
        seen = visible[r.eid]
        prev = last.get(r.pid)
        if prev is not None and not prev <= seen:
            return CheckResult(
                False, name,
                reason=f"query {r.eid} at p{r.pid} lost updates {set(prev - seen)}",
            )
        last[r.pid] = seen
    return CheckResult(True, name)


def monotonic_writes(trace: "Trace") -> CheckResult:
    """A process's updates are arbitration-ordered as issued."""
    name = "MW"
    timestamps, _ = _visibility(trace)
    last: dict[int, tuple] = {}
    for r in trace.records:
        if not r.is_update:
            continue
        ts = timestamps[r.eid]
        prev = last.get(r.pid)
        if prev is not None and not prev < ts:
            return CheckResult(
                False, name,
                reason=f"update {r.eid} at p{r.pid} stamped {ts} before {prev}",
            )
        last[r.pid] = ts
    return CheckResult(True, name)


def writes_follow_reads(trace: "Trace") -> CheckResult:
    """An update is arbitration-ordered after every update its issuer had
    already seen (Lamport causality in the timestamps)."""
    name = "WFR"
    timestamps, visible = _visibility(trace)
    seen: dict[int, frozenset] = {}
    for r in trace.records:
        if r.is_update:
            ts = timestamps[r.eid]
            for dep in seen.get(r.pid, frozenset()):
                if not dep < ts:
                    return CheckResult(
                        False, name,
                        reason=(
                            f"update {r.eid} at p{r.pid} stamped {ts} not "
                            f"after read dependency {dep}"
                        ),
                    )
        else:
            seen[r.pid] = visible[r.eid]
    return CheckResult(True, name)


def check_all_sessions(trace: "Trace") -> dict[str, CheckResult]:
    """All four guarantees at once."""
    return {
        "RYW": read_your_writes(trace),
        "MR": monotonic_reads(trace),
        "MW": monotonic_writes(trace),
        "WFR": writes_follow_reads(trace),
    }
