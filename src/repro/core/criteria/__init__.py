"""Consistency criteria (Definitions 4-10 of the paper).

A criterion maps a UQ-ADT to the set of distributed histories it allows
(Definition 4).  Each checker here decides membership for a finitely
encoded history (ω-flags standing for infinite suffixes — see
:mod:`repro.core.history`):

====================  =============================================  ========
criterion             definition                                     checker
====================  =============================================  ========
eventual (EC)         Def. 5 — replicas eventually agree on *some*   exact
                      state
strong eventual (SEC) Def. 6 — same visible updates ⇒ same state     exact search
pipelined (PC)        Def. 7 — PRAM generalized to UQ-ADTs           exact
update (UC)           Def. 8 — converged state explained by a        exact
                      linearization of the updates
strong update (SUC)   Def. 9 — visibility + arbitration total order  exact search
sequential (SC)       lin(H) ∩ L(O) ≠ ∅ keeping all queries          exact
insert-wins SEC       Def. 10 — concurrent spec of the OR-set        exact search
====================  =============================================  ========

The exact checkers are exponential and intended for the paper's example
histories and bounded random histories in property tests.  Simulator
traces are instead validated in polynomial time against the witness
relations the algorithms construct (:mod:`repro.core.criteria.witness`,
mirroring the proof of Proposition 4).
"""

from repro.core.criteria.base import CheckResult, Criterion
from repro.core.criteria.eventual import EventualConsistency, StrongEventualConsistency
from repro.core.criteria.insert_wins import InsertWinsSEC
from repro.core.criteria.pipelined import PipelinedConsistency, PipelinedConvergence
from repro.core.criteria.sequential import SequentialConsistency
from repro.core.criteria.update import StrongUpdateConsistency, UpdateConsistency
from repro.core.criteria.witness import SUCWitness, verify_suc_witness
from repro.core.criteria.lattice import classify, CRITERIA, implication_pairs
from repro.core.criteria.realtime import (
    TimedOperation,
    check_linearizable,
    trace_linearizable,
)
from repro.core.criteria.sessions import check_all_sessions
from repro.core.criteria.cache import CacheConsistency

EC = EventualConsistency()
SEC = StrongEventualConsistency()
PC = PipelinedConsistency()
UC = UpdateConsistency()
SUC = StrongUpdateConsistency()
SC = SequentialConsistency()

__all__ = [
    "CheckResult",
    "Criterion",
    "EventualConsistency",
    "StrongEventualConsistency",
    "PipelinedConsistency",
    "PipelinedConvergence",
    "UpdateConsistency",
    "StrongUpdateConsistency",
    "SequentialConsistency",
    "InsertWinsSEC",
    "SUCWitness",
    "verify_suc_witness",
    "classify",
    "CRITERIA",
    "implication_pairs",
    "EC",
    "SEC",
    "PC",
    "UC",
    "SUC",
    "SC",
    "TimedOperation",
    "check_linearizable",
    "trace_linearizable",
    "check_all_sessions",
    "CacheConsistency",
]
