"""Criterion interface and shared visibility-search machinery.

Definition 4: a consistency criterion ``C`` maps each UQ-ADT ``O`` to the
set ``C(O)`` of allowed histories; an object is C-consistent when all its
histories lie in ``C(O)``.  Checkers answer ``H ∈ C(O)?`` and, when the
answer is positive, return the witness structures the definition
existentially quantifies over (a consistent state, a visibility relation,
an arbitration order, a linearization, ...).

The visibility search used by SEC/SUC/insert-wins enumerates assignments
``Vis : queries -> 2^updates`` under the constraints shared by
Definitions 6 and 9:

* containment of program order — every update that program-order-precedes
  an event is visible to it (reflexivity + growth make this mandatory, as
  the paper argues for Fig. 1a);
* growth — visibility is monotone along the program order;
* eventual delivery — every update is visible to every ω-event (an
  ω-event stands for a cofinite suffix);
* acyclicity — an update program-order-after a query cannot be visible to
  it.

Only update→event visibility edges are enumerated: edges out of queries
never influence any definition's conclusions (queries have no effect and
``vis(q, ·)`` in Def. 10 only collects updates), and extra update→update
edges are handled separately by the insert-wins checker, which is the only
criterion whose semantics reads them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.core.adt import UQADT
from repro.core.history import Event, History


@dataclass(frozen=True, slots=True)
class CheckResult:
    """Outcome of a criterion check.

    ``witness`` carries whatever the criterion's definition existentially
    quantifies over (documented per checker); ``reason`` is a short
    human-readable explanation, mainly for negative results.
    """

    holds: bool
    criterion: str
    witness: Mapping[str, Any] | None = None
    reason: str = ""

    def __bool__(self) -> bool:
        return self.holds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "holds" if self.holds else "fails"
        extra = f" ({self.reason})" if self.reason else ""
        return f"<{self.criterion}: {status}{extra}>"


class Criterion:
    """Base class: a named checker deciding ``H ∈ C(O)``."""

    name: str = "criterion"

    def check(self, history: History, spec: UQADT) -> CheckResult:
        """Decide ``history ∈ C(spec)``; see each criterion's docstring."""
        raise NotImplementedError

    def holds(self, history: History, spec: UQADT) -> bool:
        """Boolean shorthand for :meth:`check`."""
        return bool(self.check(history, spec))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<criterion {self.name}>"


@dataclass(slots=True)
class VisibilityProblem:
    """Pre-computed structure for the visibility-assignment search."""

    history: History
    updates: tuple[Event, ...] = ()
    queries: tuple[Event, ...] = ()
    #: mandatory visible updates per query (program-order ancestors).
    mandatory: dict[Event, frozenset[Event]] = field(default_factory=dict)
    #: updates that may NOT be visible (program-order descendants).
    forbidden: dict[Event, frozenset[Event]] = field(default_factory=dict)
    #: query -> query program-order predecessors (monotonicity coupling).
    query_preds: dict[Event, tuple[Event, ...]] = field(default_factory=dict)

    @staticmethod
    def build(history: History) -> "VisibilityProblem":
        """Precompute mandatory/forbidden visibility sets for ``history``."""
        if history.has_infinite_updates:
            raise NotImplementedError(
                "visibility search over ω-updates is not supported; "
                "EC and UC special-case infinite update sets per their definitions"
            )
        updates = history.updates
        queries = history.queries
        problem = VisibilityProblem(history, updates, queries)
        update_set = set(updates)
        for q in queries:
            ancestors = {u for u in updates if history.precedes(u, q)}
            descendants = {u for u in updates if history.precedes(q, u)}
            if q.omega:
                # Eventual delivery: the infinite suffix sees every update.
                ancestors = set(update_set)
            problem.mandatory[q] = frozenset(ancestors)
            problem.forbidden[q] = frozenset(descendants)
            problem.query_preds[q] = tuple(
                p for p in queries if p is not q and history.precedes(p, q)
            )
        return problem

    def topological_queries(self) -> tuple[Event, ...]:
        """Queries sorted so program-order predecessors come first."""
        return tuple(
            sorted(self.queries, key=lambda q: len(self.query_preds[q]))
        )

    def assignments(
        self,
        *,
        admissible: Callable[[Event, frozenset[Event], dict], bool] | None = None,
    ) -> Iterator[dict[Event, frozenset[Event]]]:
        """Enumerate all visibility assignments satisfying the structural
        constraints, optionally pruned by a per-query ``admissible`` test.

        ``admissible(q, vis_set, partial_assignment)`` is called as soon as
        ``q``'s set is chosen (the partial assignment covers the queries
        placed so far, not yet including ``q``); returning ``False`` prunes
        the whole subtree, which is what makes the search practical (e.g.
        SUC's per-query replay check, SEC's group co-satisfiability).
        """
        order = self.topological_queries()
        assignment: dict[Event, frozenset[Event]] = {}

        def optional_updates(q: Event) -> list[Event]:
            base = self.mandatory[q]
            out = [
                u
                for u in self.updates
                if u not in base and u not in self.forbidden[q]
            ]
            return out

        def backtrack(i: int) -> Iterator[dict[Event, frozenset[Event]]]:
            if i == len(order):
                yield dict(assignment)
                return
            q = order[i]
            lower = set(self.mandatory[q])
            for p in self.query_preds[q]:
                lower |= assignment[p]
            if lower & self.forbidden[q]:
                return  # monotonicity forces a forbidden update: dead end
            candidates = [u for u in optional_updates(q) if u not in lower]
            # Enumerate supersets of `lower` within candidates, smallest first.
            for mask in range(1 << len(candidates)):
                vis = frozenset(lower) | frozenset(
                    u for bit, u in enumerate(candidates) if mask >> bit & 1
                )
                if q.omega and vis != frozenset(self.updates):
                    continue
                if admissible is not None and not admissible(q, vis, assignment):
                    continue
                assignment[q] = vis
                yield from backtrack(i + 1)
                del assignment[q]

        yield from backtrack(0)
