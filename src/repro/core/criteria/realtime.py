"""Real-time criteria: linearizability (atomicity) over timed operations.

The paper's introduction positions update consistency against
*linearizability* [Herlihy] / atomicity, whose wait-free implementations
must pay a network round-trip per operation (Attiya & Welch).  The
criteria of the paper deliberately ignore real time; this module restores
it so experiments can show the *gap*: Algorithm 1's runs converge but are
not linearizable (stale reads violate the real-time order), while a
hypothetical synchronous run is.

A :class:`TimedOperation` carries invocation and response instants; two
operations are real-time ordered when one responds before the other is
invoked, and overlapping operations may linearize either way.  The
checker is the classic Wing–Gong search with memoization on
(remaining-operations, canonical state): exponential worst case, fine for
the bounded traces used in tests and benches.

Simulator operations are instantaneous (wait-free local calls), so a
trace converts to zero-width intervals — optionally widened by
``duration`` to model client round-trip time, which *relaxes* real-time
constraints, exactly as in real systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.adt import Operation, Query, UQADT, Update
from repro.core.criteria.base import CheckResult

if TYPE_CHECKING:  # pragma: no cover - the sim layer imports criteria, so
    # importing it back at runtime would be circular; Trace is annotation-only.
    from repro.sim.cluster import Trace


@dataclass(frozen=True, slots=True)
class TimedOperation:
    """An operation with its real-time interval ``[invoked, responded]``."""

    label: Operation
    invoked: float
    responded: float
    pid: int | None = None
    uid: int = 0

    def __post_init__(self) -> None:
        if self.responded < self.invoked:
            raise ValueError("response cannot precede invocation")

    def precedes(self, other: "TimedOperation") -> bool:
        """Strict real-time precedence: responded before the other began."""
        return self.responded < other.invoked


def from_trace(trace: "Trace", *, duration: float = 0.0) -> list[TimedOperation]:
    """Convert a simulator trace to timed operations.

    ``duration`` widens each (instantaneous) operation into an interval
    ``[t, t + duration]``, modelling client-observed latency; larger
    durations create more overlap and hence weaker real-time constraints.
    """
    if duration < 0:
        raise ValueError("duration must be non-negative")
    return [
        TimedOperation(
            label=r.label, invoked=r.time, responded=r.time + duration,
            pid=r.pid, uid=r.eid,
        )
        for r in trace.records
    ]


def check_linearizable(
    operations: Sequence[TimedOperation],
    spec: UQADT,
) -> CheckResult:
    """Wing–Gong linearizability search.

    Witness (key ``"linearization"``): a sequence of the operations, in a
    legal order extending real-time precedence, recognized by the spec.
    """
    name = "LIN"
    ops = list(operations)
    uids = [op.uid for op in ops]
    if len(set(uids)) != len(uids):
        raise ValueError("timed operations need distinct uids")
    by_uid = {op.uid: op for op in ops}

    # Precompute the strict precedence edges.
    preceded_by: dict[int, set[int]] = {op.uid: set() for op in ops}
    for a in ops:
        for b in ops:
            if a.uid != b.uid and a.precedes(b):
                preceded_by[b.uid].add(a.uid)

    seen_states: set[tuple] = set()
    order: list[TimedOperation] = []

    def search(remaining: frozenset, state) -> bool:
        if not remaining:
            return True
        key = (remaining, spec.canonical(state))
        if key in seen_states:
            return False
        seen_states.add(key)
        for uid in sorted(remaining):
            if preceded_by[uid] & remaining:
                continue  # something must linearize before it
            op = by_uid[uid]
            label = op.label
            if isinstance(label, Update):
                next_state = spec.apply(state, label)
            elif isinstance(label, Query):
                if not spec.satisfies(state, label):
                    continue
                next_state = state
            else:  # pragma: no cover - defensive
                raise TypeError(f"not an operation: {label!r}")
            order.append(op)
            if search(remaining - {uid}, next_state):
                return True
            order.pop()
        return False

    if search(frozenset(uids), spec.initial_state()):
        return CheckResult(
            True, name, witness={"linearization": tuple(order)}
        )
    return CheckResult(
        False, name,
        reason="no linearization extends the real-time order",
    )


def trace_linearizable(
    trace: "Trace", spec: UQADT, *, duration: float = 0.0
) -> CheckResult:
    """Convenience: linearizability of a simulator trace."""
    return check_linearizable(from_trace(trace, duration=duration), spec)
