"""Cache consistency for the set — the paper's reading of the OR-set.

Section VI closes with: the OR-set "can be seen as a cache consistent set
[21] that, in some cases may have a better space complexity than update
consistency".  Goodman's cache consistency [21] requires sequential
consistency *per memory location*, with no ordering across locations.

For the set object the natural reading of "location" is the element: the
history restricted to any single value ``v`` — its insertions, deletions
and what each read said about ``v``'s membership — must be sequentially
consistent, while different elements may be explained by incompatible
orders.  A read ``R/s`` is, for element ``v``, the observation
``contains(v)/(v ∈ s)``; that projection is exactly how a per-location
criterion sees a multi-location query.

This is weaker than update consistency (no agreement across elements is
required: Fig. 1b's OR-set outcome {1,2} is cache consistent but not UC)
and incomparable with pipelined consistency.  The checker decides each
per-element projection with the exact SC machinery; cost is per-element
exponential, fine for the case-study histories.
"""

from __future__ import annotations

from repro.core.adt import Query, UQADT, Update
from repro.core.history import Event, History
from repro.core.linearization import sequential_membership
from repro.core.criteria.base import CheckResult, Criterion
from repro.util import ordering


class CacheConsistency(Criterion):
    """Per-element sequential consistency for set histories.

    Witness: one recognized linearization per element (key
    ``"element_linearizations"``: value -> event tuple of the projection).
    Only meaningful for histories over the set vocabulary
    (``insert``/``delete`` updates, ``read``/``contains`` queries).
    """

    name = "CC"

    def check(self, history: History, spec: UQADT) -> CheckResult:
        if history.has_infinite_updates:
            raise NotImplementedError(
                "CC over ω-updates is undecidable on the finite encoding"
            )
        values = self._touched_values(history)
        witness: dict = {}
        for v in sorted(values, key=repr):
            projection = self._project(history, v)
            ok, lin = sequential_membership(projection, spec, return_witness=True)
            if not ok:
                return CheckResult(
                    False,
                    self.name,
                    reason=f"element {v!r} admits no sequential explanation",
                )
            witness[v] = lin
        return CheckResult(
            True, self.name, witness={"element_linearizations": witness}
        )

    @staticmethod
    def _touched_values(history: History) -> set:
        values: set = set()
        for e in history.events:
            label = e.label
            if label.name in ("insert", "delete", "contains"):
                values.add(label.args[0])
            elif label.name == "read":
                values |= set(label.output)
            else:
                raise ValueError(
                    f"cache consistency is defined for set histories; "
                    f"found {label.name!r}"
                )
        return values

    @staticmethod
    def _project(history: History, v) -> History:
        """The per-element sub-history: updates on ``v`` plus, for every
        query, its membership observation of ``v``."""
        events: list[Event] = []
        mapping: dict[Event, Event] = {}
        for e in history.events:
            label = e.label
            if isinstance(label, Update):
                if label.args == (v,):
                    new = e
                else:
                    continue
            elif label.name == "contains":
                if label.args != (v,):
                    continue
                new = e
            else:  # a read observes every element's membership
                new = Event(
                    e.eid,
                    Query("contains", (v,), v in label.output),
                    e.pid,
                    e.omega,
                )
            mapping[e] = new
            events.append(new)
        po = ordering.empty_relation(events)
        for a in mapping:
            for b in mapping:
                if a is not b and history.precedes(a, b):
                    ordering.add_edge(po, mapping[a], mapping[b])
        return History(events, po)
