"""Eventual consistency (Definition 5) and strong eventual consistency
(Definition 6).

EC: the history has infinitely many updates, or there exists a state ``s``
such that only finitely many queries are inconsistent with ``s``.  On the
finite encoding this becomes: some ω-update exists, or the spec admits a
single state satisfying every ω-query (finite queries are a finite set by
construction, so they never constrain EC).  Note the state need not be
*reachable* — EC ignores the sequential specification's transitions, which
is exactly the weakness update consistency repairs (Fig. 1a is EC with
consistent state ∅ even though ∅ is unreachable after I(1)·I(2)).

SEC: there exists an acyclic reflexive visibility relation containing the
program order, satisfying eventual delivery and growth, such that queries
seeing the same set of updates can be explained by a common state (strong
convergence).  The checker searches visibility assignments
(:class:`repro.core.criteria.base.VisibilityProblem`) and discharges each
same-visibility group with the spec's ``solve_state``.  Pruning: as soon
as a query's visibility set is chosen, its group-so-far must remain
co-satisfiable.
"""

from __future__ import annotations

from repro.core.adt import UQADT
from repro.core.history import History
from repro.core.criteria.base import CheckResult, Criterion, VisibilityProblem


class EventualConsistency(Criterion):
    """Definition 5.  Witness: the consistent state (key ``"state"``)."""

    name = "EC"

    def check(self, history: History, spec: UQADT) -> CheckResult:
        if history.has_infinite_updates:
            return CheckResult(True, self.name, reason="infinitely many updates")
        omega_queries = [e.label for e in history.omega_events if e.is_query]
        state = spec.solve_state(omega_queries)
        if state is None:
            return CheckResult(
                False,
                self.name,
                reason=(
                    "no single state satisfies all ω-queries: "
                    + ", ".join(str(q) for q in omega_queries)
                ),
            )
        return CheckResult(True, self.name, witness={"state": state})


class StrongEventualConsistency(Criterion):
    """Definition 6.  Witness: the visibility assignment (``"visibility"``:
    query event -> frozenset of visible update events) and the per-group
    consistent states (``"group_states"``: frozenset -> state)."""

    name = "SEC"

    def check(self, history: History, spec: UQADT) -> CheckResult:
        problem = VisibilityProblem.build(history)

        def admissible(q, vis, partial) -> bool:
            constraints = [p.label for p, pv in partial.items() if pv == vis]
            constraints.append(q.label)
            return spec.solve_state(constraints) is not None

        for assignment in problem.assignments(admissible=admissible):
            groups: dict[frozenset, list] = {}
            for q, vis in assignment.items():
                groups.setdefault(vis, []).append(q.label)
            states = {}
            ok = True
            for vis, constraints in groups.items():
                s = spec.solve_state(constraints)
                if s is None:  # pragma: no cover - pruning makes this rare
                    ok = False
                    break
                states[vis] = s
            if ok:
                return CheckResult(
                    True,
                    self.name,
                    witness={"visibility": assignment, "group_states": states},
                )
        return CheckResult(
            False,
            self.name,
            reason="no visibility relation yields strongly convergent query groups",
        )
