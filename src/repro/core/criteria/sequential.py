"""Sequential consistency: ``lin(H) ∩ L(O) ≠ ∅`` with *every* query kept.

The strongest criterion the paper situates update consistency below
("stronger than eventual consistency and weaker than sequential
consistency").  Attiya & Welch's lower bound (cited in the introduction)
is why the paper abandons it for wait-free systems: reads or writes must
take time proportional to network latency.
"""

from __future__ import annotations

from repro.core.adt import UQADT
from repro.core.history import History
from repro.core.linearization import sequential_membership
from repro.core.criteria.base import CheckResult, Criterion


class SequentialConsistency(Criterion):
    """Witness: a recognized linearization (key ``"linearization"``)."""

    name = "SC"

    def check(self, history: History, spec: UQADT) -> CheckResult:
        if history.has_infinite_updates:
            raise NotImplementedError(
                "SC over ω-updates is undecidable on the finite encoding"
            )
        ok, lin = sequential_membership(history, spec, return_witness=True)
        if not ok:
            return CheckResult(
                False, self.name, reason="no linearization recognized by the spec"
            )
        return CheckResult(True, self.name, witness={"linearization": lin})
