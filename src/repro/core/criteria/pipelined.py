"""Pipelined consistency (Definition 7) and pipelined convergence
(Proposition 1's impossible combination).

PC extends PRAM [Lipton & Sandberg] from memory to all UQ-ADTs: every
maximal chain ``p`` of the program order (for sequential processes, each
process's own event sequence) must admit a linearization of *all the
updates of the history* together with ``p``'s events that the sequential
specification recognizes.  Different chains may order concurrent updates
differently — that is why PC alone does not imply convergence (Fig. 2).

Pipelined convergence = PC ∧ EC.  Proposition 1 shows it is not wait-free
implementable; :mod:`benchmarks.bench_prop1_impossibility` replays the
paper's gadget against the repo's implementations.
"""

from __future__ import annotations

from repro.core.adt import UQADT
from repro.core.history import History
from repro.core.linearization import sequential_membership
from repro.core.criteria.base import CheckResult, Criterion
from repro.core.criteria.eventual import EventualConsistency


class PipelinedConsistency(Criterion):
    """Definition 7.  Witness: one linearization per maximal chain
    (key ``"chain_linearizations"``: chain tuple -> event tuple)."""

    name = "PC"

    def check(self, history: History, spec: UQADT) -> CheckResult:
        if history.has_infinite_updates:
            raise NotImplementedError(
                "PC over ω-updates is undecidable on the finite encoding"
            )
        updates = set(history.updates)
        witness: dict = {}
        for chain in history.maximal_chains():
            sub = history.restrict(updates | set(chain))
            ok, lin = sequential_membership(sub, spec, return_witness=True)
            if not ok:
                pid = chain[0].pid if chain else None
                return CheckResult(
                    False,
                    self.name,
                    reason=(
                        f"chain of process {pid} admits no linearization with "
                        f"all updates: {' . '.join(str(e.label) for e in chain)}"
                    ),
                )
            witness[chain] = lin
        return CheckResult(True, self.name, witness={"chain_linearizations": witness})


class PipelinedConvergence(Criterion):
    """PC ∧ EC — the combination Proposition 1 proves non-wait-free."""

    name = "PC+EC"

    def __init__(self) -> None:
        self._pc = PipelinedConsistency()
        self._ec = EventualConsistency()

    def check(self, history: History, spec: UQADT) -> CheckResult:
        pc = self._pc.check(history, spec)
        if not pc:
            return CheckResult(False, self.name, reason=f"PC fails: {pc.reason}")
        ec = self._ec.check(history, spec)
        if not ec:
            return CheckResult(False, self.name, reason=f"EC fails: {ec.reason}")
        witness = dict(pc.witness or {})
        witness.update(ec.witness or {})
        return CheckResult(True, self.name, witness=witness)
