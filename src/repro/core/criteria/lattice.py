"""The criterion lattice (Proposition 2) and whole-history classification.

Implications proved in the paper (and property-tested in this repo):

* SUC ⇒ SEC and SUC ⇒ UC (Proposition 2);
* UC ⇒ EC (Proposition 2);
* SC ⇒ SUC and SC ⇒ PC (folklore; SC's witness linearization serves as
  both arbitration and visibility).

Incomparabilities exhibited by the paper's figures:

* UC vs SEC (Fig. 1a is neither; Fig. 1b is SEC not UC; exact UC-not-SEC
  witnesses exist among random histories);
* PC vs EC (Fig. 2 is PC not EC; Fig. 1d is EC — indeed SUC — but not PC).
"""

from __future__ import annotations

from repro.core.adt import UQADT
from repro.core.history import History
from repro.core.criteria.base import CheckResult
from repro.core.criteria.eventual import EventualConsistency, StrongEventualConsistency
from repro.core.criteria.pipelined import PipelinedConsistency
from repro.core.criteria.sequential import SequentialConsistency
from repro.core.criteria.update import StrongUpdateConsistency, UpdateConsistency

#: Checker instances in presentation order (matches the Fig. 1 caption).
#: "IW" (Def. 10) and "CC" (the [Goodman 1991] reading) are set-specific:
#: they participate in :func:`classify` on request but not in the generic
#: implication lattice.
CRITERIA = {
    "EC": EventualConsistency(),
    "SEC": StrongEventualConsistency(),
    "UC": UpdateConsistency(),
    "SUC": StrongUpdateConsistency(),
    "PC": PipelinedConsistency(),
    "SC": SequentialConsistency(),
}


def _register_set_specific() -> None:
    from repro.core.criteria.cache import CacheConsistency
    from repro.core.criteria.insert_wins import InsertWinsSEC

    CRITERIA["IW"] = InsertWinsSEC()
    CRITERIA["CC"] = CacheConsistency()


_register_set_specific()

#: (stronger, weaker) pairs: whenever the stronger criterion holds, the
#: weaker must hold.  Used by the lattice property tests and the Prop. 2
#: bench.
IMPLICATIONS = (
    ("SUC", "SEC"),
    ("SUC", "UC"),
    ("UC", "EC"),
    ("SEC", "EC"),
    ("SC", "SUC"),
    ("SC", "PC"),
)


def implication_pairs() -> tuple[tuple[str, str], ...]:
    """The (stronger, weaker) implication pairs (see ``IMPLICATIONS``)."""
    return IMPLICATIONS


def classify(
    history: History,
    spec: UQADT,
    criteria: tuple[str, ...] = ("EC", "SEC", "UC", "SUC", "PC"),
) -> dict[str, CheckResult]:
    """Run the selected checkers on one history (the Fig. 1 matrix rows)."""
    out: dict[str, CheckResult] = {}
    for name in criteria:
        checker = CRITERIA[name]
        try:
            out[name] = checker.check(history, spec)
        except NotImplementedError as exc:
            out[name] = CheckResult(False, name, reason=f"not decidable: {exc}")
    return out


def check_implications(results: dict[str, CheckResult]) -> list[tuple[str, str]]:
    """Return the implication pairs *violated* by a classification."""
    violated = []
    for strong, weak in IMPLICATIONS:
        if strong in results and weak in results:
            if results[strong].holds and not results[weak].holds:
                violated.append((strong, weak))
    return violated
