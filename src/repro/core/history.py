"""Distributed histories (Definition 2 of the paper).

A history ``H = (U, Q, E, Λ, ↦)`` is a countable set of events, each
labelled with an update or query operation, partially ordered by the
*program order* ``↦``.  For communicating sequential processes the program
order is the disjoint union of per-process total orders; the model also
admits richer orders (thread creation, peer churn) — :class:`History`
accepts an arbitrary acyclic relation.

Infinite histories and ω-semantics
----------------------------------

The paper's criteria are stated on infinite histories: a query repeated an
infinite number of times is written with an ``ω`` superscript (e.g.
``R/∅^ω``).  We encode such a history finitely: an :class:`Event` carries an
``omega`` flag meaning *this event stands for an infinite suffix of
identical events*.  The encoding is faithful because every criterion in the
paper only uses the ω-suffix through two facts:

* the event cannot belong to any "finite set of queries" that a criterion
  is allowed to discard (Definitions 5 and 8), and
* by eventual delivery, every update is eventually visible to the suffix,
  so the consistent/converged state must satisfy the query (Definitions 6
  and 9), and in any linearization cofinitely many copies sit after every
  update (Definition 7).

ω-events are required to be maximal in the program order (nothing can
follow an infinite suffix on its process).  Updates may also be flagged
``omega`` to encode "the participants never stop updating", which makes
EC/UC vacuously true per Definitions 5 and 8.

The two projections of the paper are provided: event-set restriction
``H_F`` (:meth:`History.restrict`) and order substitution ``H^→``
(:meth:`History.with_order`); they commute.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.adt import Operation, Query, Update
from repro.util import ordering
from repro.util.ordering import Relation


@dataclass(frozen=True, slots=True)
class Event:
    """A single event of a distributed history.

    ``eid`` identifies the event (two events carrying equal labels are still
    distinct); ``pid`` records the issuing process when the history comes
    from sequential processes (``None`` for free-form program orders);
    ``omega`` marks an infinite suffix of identical events.
    """

    eid: int
    label: Operation
    pid: int | None = None
    omega: bool = False

    @property
    def is_update(self) -> bool:
        return isinstance(self.label, Update)

    @property
    def is_query(self) -> bool:
        return isinstance(self.label, Query)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = "^ω" if self.omega else ""
        where = f"@p{self.pid}" if self.pid is not None else ""
        return f"e{self.eid}:{self.label}{suffix}{where}"


class History:
    """A distributed history: events plus an acyclic program order.

    The program order is stored as a *strict* relation (edge ``a -> b``
    means ``a ↦ b``, ``a ≠ b``); queries against it go through the
    transitive closure, so callers may supply either covering edges or the
    full order.
    """

    __slots__ = ("_events", "_po", "_po_closure", "_by_eid")

    def __init__(self, events: Iterable[Event], program_order: Relation | None = None) -> None:
        self._events: tuple[Event, ...] = tuple(events)
        eids = [e.eid for e in self._events]
        if len(set(eids)) != len(eids):
            raise ValueError("duplicate event ids in history")
        self._by_eid = {e.eid: e for e in self._events}
        if program_order is None:
            program_order = ordering.empty_relation(self._events)
        po = {e: set() for e in self._events}
        for a, succs in program_order.items():
            if a not in po:
                raise ValueError(f"program order mentions unknown event {a}")
            for b in succs:
                if b not in po:
                    raise ValueError(f"program order mentions unknown event {b}")
                if a is not b and a != b:
                    po[a].add(b)
        if not ordering.is_acyclic(po):
            raise ValueError("program order must be acyclic")
        self._po = po
        self._po_closure = ordering.relation_closure(po)
        self._validate_omega()

    def _validate_omega(self) -> None:
        for e in self._events:
            if e.omega and self._po_closure[e]:
                raise ValueError(
                    f"omega event {e} must be maximal in program order "
                    f"(an infinite suffix admits no successor)"
                )

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def from_processes(
        processes: Sequence[Sequence[Operation | tuple[Operation, bool]]],
    ) -> "History":
        """Build a history from per-process operation sequences.

        Each element is an operation or a ``(operation, omega)`` pair.  The
        program order is the union of the per-process total orders — the
        classic communicating-sequential-processes shape used throughout
        the paper's figures.
        """
        events: list[Event] = []
        eid = 0
        chains: list[list[Event]] = []
        for pid, ops in enumerate(processes):
            chain: list[Event] = []
            for item in ops:
                op, omega = item if isinstance(item, tuple) and len(item) == 2 and isinstance(
                    item[1], bool
                ) else (item, False)
                ev = Event(eid=eid, label=op, pid=pid, omega=omega)
                eid += 1
                chain.append(ev)
                events.append(ev)
            chains.append(chain)
        po = ordering.empty_relation(events)
        for chain in chains:
            for a, b in zip(chain, chain[1:]):
                ordering.add_edge(po, a, b)
        return History(events, po)

    # -- basic accessors --------------------------------------------------------

    @property
    def events(self) -> tuple[Event, ...]:
        return self._events

    @property
    def program_order(self) -> Relation:
        """The stored strict program order (covering edges as supplied)."""
        return {a: set(b) for a, b in self._po.items()}

    @property
    def program_order_closure(self) -> Relation:
        return {a: set(b) for a, b in self._po_closure.items()}

    def event(self, eid: int) -> Event:
        return self._by_eid[eid]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __contains__(self, e: Event) -> bool:
        # Events are value objects (frozen dataclasses): equal events from
        # two builds of the same trace are the same event.
        return self._by_eid.get(e.eid) == e

    @property
    def updates(self) -> tuple[Event, ...]:
        """``U_H`` — the update events."""
        return tuple(e for e in self._events if e.is_update)

    @property
    def queries(self) -> tuple[Event, ...]:
        """``Q_H`` — the query events."""
        return tuple(e for e in self._events if e.is_query)

    @property
    def omega_events(self) -> tuple[Event, ...]:
        return tuple(e for e in self._events if e.omega)

    @property
    def has_infinite_updates(self) -> bool:
        """True iff ``U_H`` is infinite (some update flagged ω)."""
        return any(e.omega for e in self.updates)

    def precedes(self, a: Event, b: Event) -> bool:
        """``a ↦ b`` in the transitive closure of the program order."""
        return b in self._po_closure[a]

    def predecessors(self, e: Event) -> set[Event]:
        """``{e' : e' ↦ e}`` (always finite per Definition 2)."""
        return {a for a in self._events if e in self._po_closure[a]}

    def successors(self, e: Event) -> set[Event]:
        return set(self._po_closure[e])

    # -- projections (Definition 2) ----------------------------------------------

    def restrict(self, keep: Iterable[Event]) -> "History":
        """``H_F`` — the sub-history induced on ``F ⊆ E``."""
        keep_set = set(keep)
        for e in keep_set:
            if e not in self:
                raise ValueError(f"event {e} not in history")
        events = tuple(e for e in self._events if e in keep_set)
        # Restrict the *closure*: two kept events ordered through a removed
        # intermediary must stay ordered (H_F keeps ↦ ∩ (F × F) where ↦ is
        # the full partial order, not merely its covering edges).
        po = ordering.restrict(self._po_closure, keep_set)
        return History(events, po)

    def without(self, drop: Iterable[Event]) -> "History":
        """``H_{E \\ F}`` — convenience complement of :meth:`restrict`."""
        drop_set = set(drop)
        return self.restrict(e for e in self._events if e not in drop_set)

    def with_order(self, order: Relation) -> "History":
        """``H^→`` — substitute the order (restricted to ``E × E``)."""
        universe = set(self._events)
        po = {e: set() for e in self._events}
        for a, succs in order.items():
            if a in universe:
                po[a] |= {b for b in succs if b in universe and b != a}
        return History(self._events, po)

    # -- structure -----------------------------------------------------------------

    def maximal_chains(self) -> list[tuple[Event, ...]]:
        """All maximal chains of the program order (Definition 7 input).

        For per-process histories these are exactly the process sequences.
        """
        if not self._events:
            return []
        return ordering.maximal_chains(self._po)

    def process_events(self, pid: int) -> tuple[Event, ...]:
        """Events of process ``pid`` in program order."""
        chain = [e for e in self._events if e.pid == pid]
        chain.sort(key=lambda e: sum(1 for a in chain if self.precedes(a, e)))
        return tuple(chain)

    @property
    def pids(self) -> tuple[int, ...]:
        return tuple(sorted({e.pid for e in self._events if e.pid is not None}))

    def map_labels(self, fn: Callable[[Operation], Operation]) -> "History":
        """A history with every label rewritten by ``fn`` (same structure)."""
        mapping = {e: replace(e, label=fn(e.label)) for e in self._events}
        po = {mapping[a]: {mapping[b] for b in succs} for a, succs in self._po.items()}
        return History(tuple(mapping[e] for e in self._events), po)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"History({len(self._events)} events, {len(self.pids)} processes)"

    def pretty(self) -> str:
        """Multi-line rendering grouped by process (diagnostics)."""
        lines = []
        for pid in self.pids:
            ops = " . ".join(
                f"{e.label}{'^ω' if e.omega else ''}" for e in self.process_events(pid)
            )
            lines.append(f"p{pid}: {ops}")
        orphans = [e for e in self._events if e.pid is None]
        if orphans:
            lines.append("free: " + " . ".join(str(e) for e in orphans))
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class TimedEvent:
    """An event with invocation/response instants, for real-time criteria.

    The core criteria of the paper ignore real time; simulator traces attach
    it so that convergence *times* can be measured and linearizability could
    be checked on small traces.
    """

    event: Event
    invoked_at: float
    responded_at: float = field(default=float("nan"))
