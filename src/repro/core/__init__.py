"""Core formalism and algorithms of the paper.

* :mod:`repro.core.adt` — update-query abstract data types (Definition 1).
* :mod:`repro.core.history` — distributed histories (Definition 2) and
  projections.
* :mod:`repro.core.linearization` — linearizations (Definition 3).
* :mod:`repro.core.criteria` — consistency criteria (Definitions 4-10):
  eventual, strong eventual, pipelined, update, strong update, sequential.
* :mod:`repro.core.universal` — Algorithm 1, the universal strong-update-
  consistent construction.
* :mod:`repro.core.memory` — Algorithm 2, the update-consistent shared
  memory with O(1) operations.
* :mod:`repro.core.checkpoint` / :mod:`repro.core.undo` /
  :mod:`repro.core.commutative` — the Section VII-C optimizations.
"""

from repro.core.adt import Query, UQADT, Update
from repro.core.history import Event, History
from repro.core.linearization import linearizations, sequential_membership

__all__ = [
    "UQADT",
    "Update",
    "Query",
    "Event",
    "History",
    "linearizations",
    "sequential_membership",
]
