"""Algorithm 2 — the update-consistent shared memory with O(1) operations.

The memory object ``mem(X, V, v0)`` orders writes exactly like Algorithm 1
(Lamport timestamps, ``(clock, pid)`` lexicographic), but exploits the
object's semantics: an overwritten value can never be read again, so only
the *latest* known write per register needs keeping.  Each register slot
holds ``(clock, pid, value)``; a received write replaces the slot iff its
timestamp is larger (lines 10-13), and a read just returns the slot's
value (lines 15-18).

Both operations are O(1); memory grows with the number of registers
actually written, not with the number of operations — the paper's
complexity claims, benchmarked head-to-head against running Algorithm 1 on
the same :class:`~repro.specs.register.MemorySpec` in
``benchmarks/bench_alg2_memory.py``.

This is the per-object-optimization message of Section VII-C: the generic
construction is universal, but a specific object often admits a far
cheaper equivalent.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import Update
from repro.sim.replica import Replica
from repro.util.clocks import LamportClock

#: On-the-wire payload: ``(clock, pid, register, value)``.
WriteMsg = tuple[int, int, Hashable, Any]


class MemoryReplica(Replica):
    """One process's state of Algorithm 2 (``UC_mem``)."""

    def __init__(self, pid: int, n: int, initial: Any = None) -> None:
        super().__init__(pid, n)
        self.initial = initial
        self.clock = LamportClock(pid)
        #: register -> (clock, pid, value); absent register reads initial.
        self.mem: dict[Hashable, tuple[int, int, Any]] = {}
        self._last_meta: dict[str, Any] = {}

    # -- Algorithm 2 -------------------------------------------------------------

    def on_update(self, update: Update) -> Sequence[Any]:
        if update.name != "write":
            raise ValueError(f"memory supports only writes, got {update.name!r}")
        x, v = update.args
        ts = self.clock.tick()  # line 5
        self._store(ts.clock, ts.pid, x, v)  # instantaneous self-delivery
        self._last_meta = {"timestamp": (ts.clock, ts.pid)}
        return [(ts.clock, ts.pid, x, v)]  # line 6

    def on_message(self, src: int, payload: WriteMsg) -> Sequence[Any]:
        cl, j, x, v = payload
        self.clock.merge(cl)  # line 9
        self._store(cl, j, x, v)  # lines 10-13
        return ()

    def on_query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        ts = self.clock.tick()
        self._last_meta = {"timestamp": (ts.clock, ts.pid)}
        if name == "read":
            (x,) = args
            slot = self.mem.get(x)
            return self.initial if slot is None else slot[2]  # lines 15-18
        if name == "snapshot":
            return {x: slot[2] for x, slot in self.mem.items()}
        raise ValueError(f"unknown memory query {name!r}")

    def _store(self, cl: int, j: int, x: Hashable, v: Any) -> None:
        slot = self.mem.get(x)
        if slot is None or (slot[0], slot[1]) < (cl, j):  # line 11
            self.mem[x] = (cl, j, v)  # line 12

    # -- introspection -----------------------------------------------------------

    def local_state(self) -> dict[Hashable, Any]:
        return {x: slot[2] for x, slot in self.mem.items() if slot[2] != self.initial}

    def witness_meta(self) -> dict[str, Any]:
        meta, self._last_meta = self._last_meta, {}
        return meta

    @property
    def register_count(self) -> int:
        return len(self.mem)
