"""Section VII-C optimization: cached intermediate states + stable-prefix GC.

Algorithm 1 replays the whole update log on every query.  The paper notes
that "in an effective implementation, a process can keep intermediate
states [which] are re-computed only if very late messages arrive" and that
"after some time old messages can be garbage collected".  Both ideas are
implemented here.

:class:`CheckpointedReplica`
    Keeps the state of an already-replayed prefix plus periodic
    checkpoints in a dyadically-thinned
    :class:`~repro.core.ckpt_tree.CheckpointTree` (O(log n) retained
    states, densest near the replay tip).  A query only folds in the
    updates that arrived since the last one (amortized O(new updates)).
    A *late* message — one whose timestamp sorts before already-replayed
    updates — rolls back to the nearest surviving checkpoint with one
    bisect + slice delete, so the re-replay that follows is proportional
    to the message's lateness, not the history length.

:class:`GarbageCollectedReplica`
    Additionally tracks, per peer, the highest Lamport clock heard from it.
    An update stamped below every peer's heard-clock can never be preceded
    by a yet-unknown update (Lamport clocks are monotone along messages),
    so the prefix of such updates is *stable*: it is folded into a base
    state and dropped from the log.  Idle processes keep the frontier
    moving with heartbeats (clock-only messages).

    Stability relies on per-sender delivery order: run it over FIFO
    channels (``Cluster(..., fifo=True)``).  With arbitrary reordering an
    in-flight message could be stamped below an already-heard clock and
    sort under the collected prefix — the replica detects that and raises
    :class:`StabilityViolation` rather than silently diverging.

Both classes inherit the commutative fast path from
:class:`~repro.core.universal.UniversalReplica`: on a spec declaring
``commutative_updates`` queries are answered from the arrival-order fold
and the checkpoint machinery idles (the sorted log, checkpoint floor
shifting and state transfers keep working, so GC composes with the fast
path).  Pass ``fast_path=False`` to exercise the replay machinery on a
commutative spec.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Hashable, Sequence

from repro.core.adt import UQADT
from repro.core.ckpt_tree import CheckpointTree
from repro.core.sync import (
    StateHandoff,
    StateTransferRequired,
    SyncDigest,
    handoff_digest,
)
from repro.core.universal import Stamped, UniversalReplica
from repro.obs.metrics import MetricsRegistry


class CheckpointedReplica(UniversalReplica):
    """Algorithm 1 with cached replay prefix and a checkpoint tree."""

    __slots__ = (
        "checkpoint_interval",
        "_state",
        "_applied",
        "_ckpts",
        "_rollbacks",
        "_rollback_replayed",
    )

    def __init__(
        self,
        pid: int,
        n: int,
        spec: UQADT,
        *,
        checkpoint_interval: int = 64,
        track_witness: bool = True,
        sync_page_size: int = 64,
        fast_path: bool | None = None,
    ) -> None:
        super().__init__(
            pid, n, spec,
            track_witness=track_witness,
            sync_page_size=sync_page_size,
            fast_path=fast_path,
        )
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.checkpoint_interval = checkpoint_interval
        self._state: Any = spec.initial_state()
        self._applied = 0  # updates[:applied] are folded into _state
        self._ckpts = CheckpointTree(self._state)

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        super().bind_metrics(registry)
        #: late-message rollbacks (bench metric).
        self._rollbacks = registry.counter(
            "repro_replica_rollbacks_total",
            help="checkpoint rollbacks forced by late messages (updates "
            "stamped before an already-replayed prefix)",
            label_names=("pid",),
        ).labels(pid=self.pid)
        #: how much cached work each rollback discarded — the updates
        #: between the surviving checkpoint and the old replay tip, which
        #: the next query must fold again.
        self._rollback_replayed = registry.counter(
            "repro_replica_rollback_replayed_updates_total",
            help="already-replayed updates invalidated by rollbacks (and "
            "hence re-applied by the next query)",
            label_names=("pid",),
        ).labels(pid=self.pid)

    @property
    def rollbacks(self) -> int:
        """Deprecated: reads ``repro_replica_rollbacks_total``."""
        return int(self._rollbacks.value)

    @property
    def rollback_replayed(self) -> int:
        """Reads ``repro_replica_rollback_replayed_updates_total``."""
        return int(self._rollback_replayed.value)

    def checkpoint_indices(self) -> list[int]:
        """Retained checkpoint positions (for tests and benchmarks)."""
        return self._ckpts.indices()

    # The base state replay starts from (overridden by the GC subclass).
    def _base_state(self) -> Any:
        return self.spec.initial_state()

    def _after_insert(self, pos: int, stamped: Stamped) -> None:
        if self._fast_path:
            # Arrival-order fold answers queries; the replay cache idles.
            self._fast_state = self.spec.apply(self._fast_state, stamped[2])
            return
        if pos < self._applied:
            # Late message: the cached state replayed updates that sort
            # after it.  Roll back to the nearest checkpoint not past pos
            # (a checkpoint *at* pos is still valid: it folds exactly the
            # entries now sorting before the newcomer).
            self._rollbacks.inc()
            idx, state = self._ckpts.rollback(pos)
            self._rollback_replayed.inc(self._applied - idx)
            self._applied, self._state = idx, state

    def _replay_state(self) -> Any:
        state = self._state
        i = self._applied
        start = i
        log = self.updates
        interval = self.checkpoint_interval
        apply = self.spec.apply
        record = self._ckpts.record
        while i < len(log):
            state = apply(state, log[i][2])
            i += 1
            if i % interval == 0:
                record(i, state)
        self._replayed.inc(i - start)
        self._applied, self._state = i, state
        return state

    def _peek_state(self) -> Any:
        """Introspection fold: reuses the cached prefix but mutates
        nothing and charges nothing (see the base-class docstring)."""
        if self._fast_path:
            return self._fast_state
        state = self._state
        log = self.updates
        apply = self.spec.apply
        for i in range(self._applied, len(log)):
            state = apply(state, log[i][2])
        return state


class StabilityViolation(RuntimeError):
    """A message arrived below the garbage-collected frontier (the network
    reordered per-sender traffic; stable-prefix GC needs FIFO channels)."""


class GarbageCollectedReplica(CheckpointedReplica):
    """Checkpointing plus stable-prefix garbage collection.

    The wire format grows a heartbeat variant: updates travel as
    ``(clock, pid, update)`` like the base class; heartbeats as
    ``("hb", clock, pid)``.  GC folds the stable prefix into the base
    state; :attr:`collected` counts discarded log entries.
    """

    __slots__ = (
        "gc_interval",
        "heard",
        "_base",
        "_since_gc",
        "_gc_frontier",
        "_gc_clock_floor",
        "_own_suspect_below",
        "_collected",
        "_state_transfers",
        "_state_installs",
    )

    HEARTBEAT = "hb"

    def __init__(
        self,
        pid: int,
        n: int,
        spec: UQADT,
        *,
        checkpoint_interval: int = 64,
        gc_interval: int = 128,
        track_witness: bool = False,
        relay: bool = False,
        sync_page_size: int = 64,
        fast_path: bool | None = None,
    ) -> None:
        if relay:
            raise ValueError(
                "stable-prefix GC cannot run with epidemic relay: a "
                "relayed duplicate stamped under the collected frontier is "
                "indistinguishable from a stability violation"
            )
        super().__init__(
            pid, n, spec,
            checkpoint_interval=checkpoint_interval,
            track_witness=track_witness,
            sync_page_size=sync_page_size,
            fast_path=fast_path,
        )
        if gc_interval <= 0:
            raise ValueError("gc interval must be positive")
        self.gc_interval = gc_interval
        #: highest clock heard from each peer (own entry tracks own clock).
        self.heard: list[int] = [0] * n
        self._base: Any = spec.initial_state()
        self._since_gc = 0
        #: largest (clock, pid) folded into the base state.
        self._gc_frontier: tuple[int, int] | None = None
        #: completeness floor of the base state: every update (from any
        #: author) with clock <= this is folded into ``_base``.  Unlike
        #: the frontier it advances even when a collection folds nothing
        #: (min(heard) grew past an empty stretch), and it is what lets
        #: ``_known`` stay pruned: ids at or below the floor are known
        #: implicitly.
        self._gc_clock_floor = 0
        #: crash-recovery honesty guard: after a truncated restore this
        #: replica may have *lost its own updates* with clocks at or below
        #: the recorded value, so its own ``heard`` column (a completeness
        #: claim about its own authorship) must not advance past the
        #: restored log until a state transfer certifies a floor covering
        #: the gap.  0 = no suspicion.
        self._own_suspect_below = 0

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        super().bind_metrics(registry)
        #: log entries folded away by stable-prefix GC.
        self._collected = registry.counter(
            "repro_replica_collected_entries_total",
            help="update-log entries garbage-collected into the base state "
            "(the stable prefix of Section VII-C)",
            label_names=("pid",),
        ).labels(pid=self.pid)
        #: anti-entropy v2 state transfer accounting.
        self._state_transfers = registry.counter(
            "repro_sync_state_transfers_total",
            help="base-state handoffs sent to requesters whose coverage "
            "ended below this replica's GC floor",
            label_names=("pid",),
        ).labels(pid=self.pid)
        self._state_installs = registry.counter(
            "repro_sync_state_installs_total",
            help="transferred base states installed (the requester side "
            "of a state transfer)",
            label_names=("pid",),
        ).labels(pid=self.pid)

    @property
    def collected(self) -> int:
        """Deprecated: reads ``repro_replica_collected_entries_total``."""
        return int(self._collected.value)

    def _base_state(self) -> Any:
        return self._base

    def on_update(self, update) -> Sequence[Any]:
        out = super().on_update(update)
        self._advance_own_heard()
        self._maybe_gc()
        return out

    def on_message(self, src: int, payload) -> Sequence[Any]:
        if isinstance(payload, tuple) and payload and payload[0] == self.HEARTBEAT:
            _, cl, j = payload
            self.clock.merge(cl)
            if src == j:
                # Only the author's own channel carries the FIFO
                # completeness claim; a forwarded heartbeat would assert
                # another channel's delivery order.
                self.heard[j] = max(self.heard[j], cl)
            self._maybe_gc()
            return ()
        if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
            # Other control payloads (the anti-entropy handshake): the
            # base class dispatches them; sync-resp entries go through
            # _ingest_synced, which tolerates sub-floor duplicates and
            # never advances ``heard`` (a paged update arrives on the
            # responder's channel, not its author's, so it carries no
            # FIFO completeness claim).
            return super().on_message(src, payload)
        cl, j, _u = payload
        if cl <= self._gc_clock_floor:
            raise StabilityViolation(
                f"update stamped {(cl, j)} arrived under the collected "
                f"floor {self._gc_clock_floor}; use FIFO channels with GC"
            )
        if src == j:
            # As with heartbeats: the claim "every j-update with a smaller
            # clock has been delivered" is only sound on j's own FIFO
            # channel.  Before v2, a sync-resp entry relayed by a peer
            # advanced ``heard`` too, silently over-advancing the frontier.
            self.heard[j] = max(self.heard[j], cl)
        out = super().on_message(src, payload)
        self._maybe_gc()
        return out

    def heartbeat(self) -> tuple:
        """A clock-only payload keeping the stability frontier moving.

        Callers broadcast it via the cluster's network; it carries no
        update, so it does not appear in the distributed history.
        """
        self._advance_own_heard()
        return (self.HEARTBEAT, self.clock.value, self.pid)

    def _advance_own_heard(self) -> None:
        """Advance the own ``heard`` column to the clock — unless a
        truncated restore left this replica unsure it still has all of
        its own pre-crash updates (see ``_own_suspect_below``)."""
        if not self._own_suspect_below:
            self.heard[self.pid] = max(self.heard[self.pid], self.clock.value)

    def _maybe_gc(self) -> None:
        self._since_gc += 1
        if self._since_gc >= self.gc_interval:
            self._since_gc = 0
            self.collect_garbage()

    def collect_garbage(self) -> int:
        """Fold the stable prefix into the base state; return entries freed.

        An update ``(cl, j)`` is stable when ``cl <= min(heard)``: over FIFO
        channels every not-yet-received message from process ``k`` was sent
        after the one stamped ``heard[k]``, so it carries a clock of at
        least ``heard[k] + 1 > cl`` (Lamport monotonicity) and can never
        sort into or before the prefix.
        """
        frontier = min(self.heard)
        if frontier > self._gc_clock_floor:
            # The floor is a completeness claim, not a fold marker: every
            # update with clock <= min(heard) is known (FIFO + Lamport
            # monotonicity), so it may advance even when nothing in the
            # live log falls under it.  _known no longer needs to
            # enumerate ids at or below it.
            self._gc_clock_floor = frontier
            self._known = {uid for uid in self._known if uid[0] > frontier}
        # (frontier + 1,) sorts before (frontier + 1, 0): the cut is the
        # first entry with clock > frontier.
        cut = bisect_left(self._keys, (frontier + 1,))
        if cut == 0:
            return 0
        # Fold the prefix into the base state.
        state = self._base
        for cl, j, update in self.updates[:cut]:
            state = self.spec.apply(state, update)
            self._gc_frontier = (cl, j)
        self._base = state
        del self.updates[:cut]
        del self._keys[:cut]
        self._visible_cache = None
        if self._fast_path:
            # The arrival-order fold already contains the collected
            # prefix; only the log representation changed.
            pass
        else:
            # Shift cached replay structures left by `cut`.  The cached
            # state (old base + updates[:applied]) equals the new base
            # plus the surviving applied entries, so when the applied
            # prefix covers the cut only its index moves; otherwise the
            # cache is a strict sub-prefix of the new base and restarts
            # from it.
            self._ckpts.shift_left(cut, self._base)
            if self._applied >= cut:
                self._applied -= cut
            else:
                self._applied, self._state = 0, self._base
        self._collected.inc(cut)
        return cut

    def on_query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        out = super().on_query(name, args)
        if self.track_witness and self._last_meta:
            # The folded prefix is reported as a floor instead of an
            # enumerated uid list (which would grow forever and defeat
            # GC's space bound): every update with clock <= the floor was
            # visible.  Trace consumers expand it against the recorded
            # update timestamps.
            self._last_meta["visible_floor"] = self._gc_clock_floor
        return out

    # -- anti-entropy v2: digests, state transfer, durable state --------------------

    def _sync_digest(self) -> SyncDigest:
        """Floors from the ``heard`` vector (the same reliable-FIFO
        argument that makes the stable prefix stable certifies "I know
        every j-update with clock <= heard[j]"), exception runs for the
        handful of ids learned above it (paged in by earlier sync
        rounds), and consent to install a state transfer."""
        return SyncDigest.from_uids(
            self._known, self.n,
            floors=tuple(self.heard),
            accepts_state=True,
        )

    def _covers_uid(self, cl: int, j: int) -> bool:
        """Ids at or below the GC floor are known implicitly: they are
        folded into the base state and pruned from ``_known``."""
        return cl <= self._gc_clock_floor or (cl, j) in self._known

    def _serve_sync(self, requester: int, digest: SyncDigest) -> None:
        floor = self._gc_clock_floor
        if floor > 0 and any(
            digest.coverage_floor(j) < floor for j in range(self.n)
        ):
            # The requester is missing updates at or below our floor.
            # Those are folded into the base state and cannot be
            # enumerated, let alone paged — hand the compacted state off.
            if not digest.accepts_state:
                raise StateTransferRequired(
                    f"replica {requester} is missing updates at or below "
                    f"replica {self.pid}'s GC floor {floor}, which only a "
                    "state transfer can repair, but its digest does not "
                    "accept one (a v1 requester, or a replica without a "
                    "base state)"
                )
            # The handoff travels under the same integrity discipline the
            # base segment has on disk: a digest over its canonical
            # content, which StateHandoff.parse verifies on the receiver
            # before install_gc_state ever sees the payload.
            handoff = StateHandoff(
                base=self._base,
                clock_floor=floor,
                frontier=self._gc_frontier,
                heard=tuple(self.heard),
                digest=handoff_digest(
                    self._base, floor, self._gc_frontier, tuple(self.heard)
                ),
            )
            self.send_to(requester, handoff.payload(self.pid))
            self._state_transfers.inc()
        super()._serve_sync(requester, digest)

    def _on_sync_state(self, src: int, payload: tuple) -> Sequence[Any]:
        # parse() refuses a handoff whose digest does not verify — a
        # damaged base segment must not be folded into local state.
        sender, handoff = StateHandoff.parse(payload)
        if self.install_gc_state(
            base=handoff.base,
            clock_floor=handoff.clock_floor,
            frontier=handoff.frontier,
        ):
            self._state_installs.inc()
        return ()

    def install_gc_state(
        self,
        *,
        base: Any,
        clock_floor: int,
        frontier: tuple[int, int] | None = None,
    ) -> bool:
        """Adopt a compacted base state certified complete to
        ``clock_floor`` (from a state transfer or a durable snapshot).

        Safe because the sender's floor is a completeness claim over
        *every* author: the handed-off base contains every update with
        clock <= floor, so our live entries at or below it are duplicates
        of folded content and our own base (complete to a lower floor) is
        subsumed.  The clock is merged up to the floor first — a replica
        that adopted a floor and then stamped an update at or below it
        would violate its own peers' stability check.  Returns False (and
        installs nothing) when our floor is already at least as high.
        """
        self.clock.merge(clock_floor)
        if clock_floor <= self._gc_clock_floor:
            return False
        cut = bisect_left(self._keys, (clock_floor + 1,))
        del self.updates[:cut]
        del self._keys[:cut]
        self._visible_cache = None
        self._base = base
        self._gc_clock_floor = clock_floor
        if frontier is not None:
            previous = self._gc_frontier
            self._gc_frontier = (
                frontier if previous is None else max(previous, frontier)
            )
        for j in range(self.n):
            self.heard[j] = max(self.heard[j], clock_floor)
        self._known = {uid for uid in self._known if uid[0] > clock_floor}
        # Cached replay structures predate the new base; rebuild from it.
        self._applied, self._state = 0, base
        self._ckpts.reset(base)
        if self._fast_path:
            # The handed-off base replaces our arrival-order fold's view
            # of the collected prefix wholesale; refold the surviving
            # live entries on top of it.
            self._fast_state = self.spec.apply_batch(
                base, [u for _, _, u in self.updates]
            )
        if self._own_suspect_below and clock_floor >= self._own_suspect_below:
            # The floor certifies every update (ours included) at or
            # below it, so the amnesia gap is provably repaired.
            self._own_suspect_below = 0
        return True

    def durable_gc_state(self) -> dict[str, Any]:
        """The GC-specific durable state for a snapshot: the compacted
        base, its completeness floor, the fold frontier and the ``heard``
        vector.  The base is an atomically-rewritten compacted segment in
        the on-disk model — unlike live log entries it is never truncated
        by a missed fsync (see :mod:`repro.sim.persist`)."""
        return {
            "base": self._base,
            "clock_floor": self._gc_clock_floor,
            "frontier": self._gc_frontier,
            "heard": tuple(self.heard),
        }

    def finish_restore(
        self, pre_crash_clock: int, heard: Sequence[int] | None = None
    ) -> None:
        """Re-derive sound ``heard`` claims after a snapshot restore.

        With a complete snapshot (``heard`` given) the stored vector is
        adopted verbatim.  After a *truncated* restore the stored vector
        may over-claim — the lost log tail could contain updates the
        claims cover — so each column is rewound to what the surviving
        state proves: the floor (base completeness) raised by the highest
        surviving log clock per author (sound because truncation keeps a
        global ``(clock, pid)``-prefix, hence a per-author clock-prefix).
        If the pre-crash clock exceeds the rewound own column, this
        replica may have lost *its own* updates, and the own column is
        frozen until a state transfer certifies a floor above the gap.
        """
        if heard is not None:
            for j, claimed in enumerate(heard[: self.n]):
                self.heard[j] = max(self.heard[j], int(claimed))
            return
        for j in range(self.n):
            self.heard[j] = max(self.heard[j], self._gc_clock_floor)
        for cl, j, _u in self.updates:
            self.heard[j] = max(self.heard[j], cl)
        if pre_crash_clock > self.heard[self.pid]:
            self._own_suspect_below = pre_crash_clock

    @property
    def live_log_length(self) -> int:
        return len(self.updates)

    @property
    def gc_clock_floor(self) -> int:
        """Completeness floor of the base state: every update with clock
        at or below it (from any author) has been folded into ``_base``."""
        return self._gc_clock_floor

    @property
    def known_ids_tracked(self) -> int:
        """Ids enumerated in ``_known`` (the floor covers the rest) —
        the quantity satellite benchmarks assert stays bounded."""
        return len(self._known)
