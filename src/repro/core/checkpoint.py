"""Section VII-C optimization: cached intermediate states + stable-prefix GC.

Algorithm 1 replays the whole update log on every query.  The paper notes
that "in an effective implementation, a process can keep intermediate
states [which] are re-computed only if very late messages arrive" and that
"after some time old messages can be garbage collected".  Both ideas are
implemented here.

:class:`CheckpointedReplica`
    Keeps the state of an already-replayed prefix plus periodic
    checkpoints.  A query only folds in the updates that arrived since the
    last one (amortized O(new updates)).  A *late* message — one whose
    timestamp sorts before already-replayed updates — rolls back to the
    nearest checkpoint at or before its insertion point.

:class:`GarbageCollectedReplica`
    Additionally tracks, per peer, the highest Lamport clock heard from it.
    An update stamped below every peer's heard-clock can never be preceded
    by a yet-unknown update (Lamport clocks are monotone along messages),
    so the prefix of such updates is *stable*: it is folded into a base
    state and dropped from the log.  Idle processes keep the frontier
    moving with heartbeats (clock-only messages).

    Stability relies on per-sender delivery order: run it over FIFO
    channels (``Cluster(..., fifo=True)``).  With arbitrary reordering an
    in-flight message could be stamped below an already-heard clock and
    sort under the collected prefix — the replica detects that and raises
    :class:`StabilityViolation` rather than silently diverging.
"""

from __future__ import annotations

import bisect
from typing import Any, Hashable, Sequence

from repro.core.adt import UQADT
from repro.core.universal import Stamped, UniversalReplica
from repro.obs.metrics import MetricsRegistry


class CheckpointedReplica(UniversalReplica):
    """Algorithm 1 with cached replay prefix and periodic checkpoints."""

    def __init__(
        self,
        pid: int,
        n: int,
        spec: UQADT,
        *,
        checkpoint_interval: int = 64,
        track_witness: bool = True,
    ) -> None:
        super().__init__(pid, n, spec, track_witness=track_witness)
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.checkpoint_interval = checkpoint_interval
        self._state: Any = spec.initial_state()
        self._applied = 0  # updates[:applied] are folded into _state
        #: (index, state) pairs, ascending; index 0 is the base state.
        self._checkpoints: list[tuple[int, Any]] = [(0, self._state)]

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        super().bind_metrics(registry)
        #: late-message rollbacks (bench metric).
        self._rollbacks = registry.counter(
            "repro_replica_rollbacks_total",
            help="checkpoint rollbacks forced by late messages (updates "
            "stamped before an already-replayed prefix)",
            label_names=("pid",),
        ).labels(pid=self.pid)

    @property
    def rollbacks(self) -> int:
        """Deprecated: reads ``repro_replica_rollbacks_total``."""
        return int(self._rollbacks.value)

    # The base state replay starts from (overridden by the GC subclass).
    def _base_state(self) -> Any:
        return self.spec.initial_state()

    def _insert(self, stamped: Stamped) -> None:
        key = (stamped[0], stamped[1])
        pos = bisect.bisect_left(self.updates, key, key=lambda s: (s[0], s[1]))
        self.updates.insert(pos, stamped)
        if pos < self._applied:
            # Late message: the cached state replayed updates that sort
            # after it.  Roll back to the nearest checkpoint not past pos.
            self._rollbacks.inc()
            while self._checkpoints and self._checkpoints[-1][0] > pos:
                self._checkpoints.pop()
            if self._checkpoints:
                self._applied, self._state = self._checkpoints[-1]
            else:  # pragma: no cover - base checkpoint is never popped
                self._applied, self._state = 0, self._base_state()

    def _replay_state(self) -> Any:
        state = self._state
        i = self._applied
        log = self.updates
        interval = self.checkpoint_interval
        while i < len(log):
            state = self.spec.apply(state, log[i][2])
            i += 1
            if i % interval == 0:
                self._checkpoints.append((i, state))
        self._replayed.inc(i - self._applied)
        self._applied, self._state = i, state
        return state


class StabilityViolation(RuntimeError):
    """A message arrived below the garbage-collected frontier (the network
    reordered per-sender traffic; stable-prefix GC needs FIFO channels)."""


class GarbageCollectedReplica(CheckpointedReplica):
    """Checkpointing plus stable-prefix garbage collection.

    The wire format grows a heartbeat variant: updates travel as
    ``(clock, pid, update)`` like the base class; heartbeats as
    ``("hb", clock, pid)``.  GC folds the stable prefix into the base
    state; :attr:`collected` counts discarded log entries.
    """

    HEARTBEAT = "hb"

    def __init__(
        self,
        pid: int,
        n: int,
        spec: UQADT,
        *,
        checkpoint_interval: int = 64,
        gc_interval: int = 128,
        track_witness: bool = False,
        relay: bool = False,
    ) -> None:
        if relay:
            raise ValueError(
                "stable-prefix GC cannot run with epidemic relay: a "
                "relayed duplicate stamped under the collected frontier is "
                "indistinguishable from a stability violation"
            )
        super().__init__(
            pid, n, spec,
            checkpoint_interval=checkpoint_interval,
            track_witness=track_witness,
        )
        if gc_interval <= 0:
            raise ValueError("gc interval must be positive")
        self.gc_interval = gc_interval
        #: highest clock heard from each peer (own entry tracks own clock).
        self.heard: list[int] = [0] * n
        self._base: Any = spec.initial_state()
        self._stable_uids: list[tuple[int, int]] = []
        self._since_gc = 0
        #: largest (clock, pid) folded into the base state.
        self._gc_frontier: tuple[int, int] | None = None

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        super().bind_metrics(registry)
        #: log entries folded away by stable-prefix GC.
        self._collected = registry.counter(
            "repro_replica_collected_entries_total",
            help="update-log entries garbage-collected into the base state "
            "(the stable prefix of Section VII-C)",
            label_names=("pid",),
        ).labels(pid=self.pid)

    @property
    def collected(self) -> int:
        """Deprecated: reads ``repro_replica_collected_entries_total``."""
        return int(self._collected.value)

    def _base_state(self) -> Any:
        return self._base

    def on_update(self, update) -> Sequence[Any]:
        out = super().on_update(update)
        self.heard[self.pid] = self.clock.value
        self._maybe_gc()
        return out

    def on_message(self, src: int, payload) -> Sequence[Any]:
        if isinstance(payload, tuple) and payload and payload[0] == self.HEARTBEAT:
            _, cl, j = payload
            self.clock.merge(cl)
            self.heard[j] = max(self.heard[j], cl)
            self._maybe_gc()
            return ()
        if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
            # Other control payloads (the anti-entropy handshake): the base
            # class dispatches them; any update they unfold is re-routed
            # through this method, so the frontier check still applies.
            return super().on_message(src, payload)
        cl, j, _u = payload
        if self._gc_frontier is not None and (cl, j) <= self._gc_frontier:
            raise StabilityViolation(
                f"update stamped {(cl, j)} arrived under the collected "
                f"frontier {self._gc_frontier}; use FIFO channels with GC"
            )
        self.heard[j] = max(self.heard[j], cl)
        out = super().on_message(src, payload)
        self._maybe_gc()
        return out

    def heartbeat(self) -> tuple:
        """A clock-only payload keeping the stability frontier moving.

        Callers broadcast it via the cluster's network; it carries no
        update, so it does not appear in the distributed history.
        """
        self.heard[self.pid] = self.clock.value
        return (self.HEARTBEAT, self.clock.value, self.pid)

    def _maybe_gc(self) -> None:
        self._since_gc += 1
        if self._since_gc >= self.gc_interval:
            self._since_gc = 0
            self.collect_garbage()

    def collect_garbage(self) -> int:
        """Fold the stable prefix into the base state; return entries freed.

        An update ``(cl, j)`` is stable when ``cl <= min(heard)``: over FIFO
        channels every not-yet-received message from process ``k`` was sent
        after the one stamped ``heard[k]``, so it carries a clock of at
        least ``heard[k] + 1 > cl`` (Lamport monotonicity) and can never
        sort into or before the prefix.
        """
        frontier = min(self.heard)
        cut = bisect.bisect_left(
            self.updates, (frontier + 1,), key=lambda s: (s[0], s[1])
        )
        if cut == 0:
            return 0
        # Fold the prefix into the base state.
        state = self._base
        for cl, j, update in self.updates[:cut]:
            state = self.spec.apply(state, update)
            if self.track_witness:
                self._stable_uids.append((cl, j))
            self._gc_frontier = (cl, j)
        self._base = state
        del self.updates[:cut]
        # Shift cached replay structures left by `cut`.
        self._applied = max(0, self._applied - cut)
        shifted = [(i - cut, s) for i, s in self._checkpoints if i - cut >= 0]
        self._checkpoints = shifted if shifted else [(0, self._base)]
        if not any(i == 0 for i, _ in self._checkpoints):
            self._checkpoints.insert(0, (0, self._base))
        # The cached state may predate the fold; recompute conservatively.
        self._applied, self._state = self._checkpoints[0]
        for i, s in self._checkpoints:
            if i <= len(self.updates):
                self._applied, self._state = i, s
        self._collected.inc(cut)
        return cut

    def on_query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        out = super().on_query(name, args)
        if self.track_witness and self._last_meta:
            visible = set(self._last_meta.get("visible", frozenset()))
            visible.update(self._stable_uids)
            self._last_meta["visible"] = frozenset(visible)
        return out

    @property
    def live_log_length(self) -> int:
        return len(self.updates)
