"""Section VII-C optimization: cached intermediate states + stable-prefix GC.

Algorithm 1 replays the whole update log on every query.  The paper notes
that "in an effective implementation, a process can keep intermediate
states [which] are re-computed only if very late messages arrive" and that
"after some time old messages can be garbage collected".  Both ideas are
implemented here.

:class:`CheckpointedReplica`
    Keeps the state of an already-replayed prefix plus periodic
    checkpoints.  A query only folds in the updates that arrived since the
    last one (amortized O(new updates)).  A *late* message — one whose
    timestamp sorts before already-replayed updates — rolls back to the
    nearest checkpoint at or before its insertion point.

:class:`GarbageCollectedReplica`
    Additionally tracks, per peer, the highest Lamport clock heard from it.
    An update stamped below every peer's heard-clock can never be preceded
    by a yet-unknown update (Lamport clocks are monotone along messages),
    so the prefix of such updates is *stable*: it is folded into a base
    state and dropped from the log.  Idle processes keep the frontier
    moving with heartbeats (clock-only messages).

    Stability relies on per-sender delivery order: run it over FIFO
    channels (``Cluster(..., fifo=True)``).  With arbitrary reordering an
    in-flight message could be stamped below an already-heard clock and
    sort under the collected prefix — the replica detects that and raises
    :class:`StabilityViolation` rather than silently diverging.
"""

from __future__ import annotations

import bisect
from typing import Any, Hashable, Sequence

from repro.core.adt import UQADT
from repro.core.sync import StateHandoff, StateTransferRequired, SyncDigest
from repro.core.universal import Stamped, UniversalReplica
from repro.obs.metrics import MetricsRegistry


class CheckpointedReplica(UniversalReplica):
    """Algorithm 1 with cached replay prefix and periodic checkpoints."""

    def __init__(
        self,
        pid: int,
        n: int,
        spec: UQADT,
        *,
        checkpoint_interval: int = 64,
        track_witness: bool = True,
        sync_page_size: int = 64,
    ) -> None:
        super().__init__(
            pid, n, spec,
            track_witness=track_witness,
            sync_page_size=sync_page_size,
        )
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.checkpoint_interval = checkpoint_interval
        self._state: Any = spec.initial_state()
        self._applied = 0  # updates[:applied] are folded into _state
        #: (index, state) pairs, ascending; index 0 is the base state.
        self._checkpoints: list[tuple[int, Any]] = [(0, self._state)]

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        super().bind_metrics(registry)
        #: late-message rollbacks (bench metric).
        self._rollbacks = registry.counter(
            "repro_replica_rollbacks_total",
            help="checkpoint rollbacks forced by late messages (updates "
            "stamped before an already-replayed prefix)",
            label_names=("pid",),
        ).labels(pid=self.pid)

    @property
    def rollbacks(self) -> int:
        """Deprecated: reads ``repro_replica_rollbacks_total``."""
        return int(self._rollbacks.value)

    # The base state replay starts from (overridden by the GC subclass).
    def _base_state(self) -> Any:
        return self.spec.initial_state()

    def _insert(self, stamped: Stamped) -> None:
        key = (stamped[0], stamped[1])
        pos = bisect.bisect_left(self.updates, key, key=lambda s: (s[0], s[1]))
        self.updates.insert(pos, stamped)
        if pos < self._applied:
            # Late message: the cached state replayed updates that sort
            # after it.  Roll back to the nearest checkpoint not past pos.
            self._rollbacks.inc()
            while self._checkpoints and self._checkpoints[-1][0] > pos:
                self._checkpoints.pop()
            if self._checkpoints:
                self._applied, self._state = self._checkpoints[-1]
            else:  # pragma: no cover - base checkpoint is never popped
                self._applied, self._state = 0, self._base_state()

    def _replay_state(self) -> Any:
        state = self._state
        i = self._applied
        log = self.updates
        interval = self.checkpoint_interval
        while i < len(log):
            state = self.spec.apply(state, log[i][2])
            i += 1
            if i % interval == 0:
                self._checkpoints.append((i, state))
        self._replayed.inc(i - self._applied)
        self._applied, self._state = i, state
        return state


class StabilityViolation(RuntimeError):
    """A message arrived below the garbage-collected frontier (the network
    reordered per-sender traffic; stable-prefix GC needs FIFO channels)."""


class GarbageCollectedReplica(CheckpointedReplica):
    """Checkpointing plus stable-prefix garbage collection.

    The wire format grows a heartbeat variant: updates travel as
    ``(clock, pid, update)`` like the base class; heartbeats as
    ``("hb", clock, pid)``.  GC folds the stable prefix into the base
    state; :attr:`collected` counts discarded log entries.
    """

    HEARTBEAT = "hb"

    def __init__(
        self,
        pid: int,
        n: int,
        spec: UQADT,
        *,
        checkpoint_interval: int = 64,
        gc_interval: int = 128,
        track_witness: bool = False,
        relay: bool = False,
        sync_page_size: int = 64,
    ) -> None:
        if relay:
            raise ValueError(
                "stable-prefix GC cannot run with epidemic relay: a "
                "relayed duplicate stamped under the collected frontier is "
                "indistinguishable from a stability violation"
            )
        super().__init__(
            pid, n, spec,
            checkpoint_interval=checkpoint_interval,
            track_witness=track_witness,
            sync_page_size=sync_page_size,
        )
        if gc_interval <= 0:
            raise ValueError("gc interval must be positive")
        self.gc_interval = gc_interval
        #: highest clock heard from each peer (own entry tracks own clock).
        self.heard: list[int] = [0] * n
        self._base: Any = spec.initial_state()
        self._since_gc = 0
        #: largest (clock, pid) folded into the base state.
        self._gc_frontier: tuple[int, int] | None = None
        #: completeness floor of the base state: every update (from any
        #: author) with clock <= this is folded into ``_base``.  Unlike
        #: the frontier it advances even when a collection folds nothing
        #: (min(heard) grew past an empty stretch), and it is what lets
        #: ``_known`` stay pruned: ids at or below the floor are known
        #: implicitly.
        self._gc_clock_floor = 0
        #: crash-recovery honesty guard: after a truncated restore this
        #: replica may have *lost its own updates* with clocks at or below
        #: the recorded value, so its own ``heard`` column (a completeness
        #: claim about its own authorship) must not advance past the
        #: restored log until a state transfer certifies a floor covering
        #: the gap.  0 = no suspicion.
        self._own_suspect_below = 0

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        super().bind_metrics(registry)
        #: log entries folded away by stable-prefix GC.
        self._collected = registry.counter(
            "repro_replica_collected_entries_total",
            help="update-log entries garbage-collected into the base state "
            "(the stable prefix of Section VII-C)",
            label_names=("pid",),
        ).labels(pid=self.pid)
        #: anti-entropy v2 state transfer accounting.
        self._state_transfers = registry.counter(
            "repro_sync_state_transfers_total",
            help="base-state handoffs sent to requesters whose coverage "
            "ended below this replica's GC floor",
            label_names=("pid",),
        ).labels(pid=self.pid)
        self._state_installs = registry.counter(
            "repro_sync_state_installs_total",
            help="transferred base states installed (the requester side "
            "of a state transfer)",
            label_names=("pid",),
        ).labels(pid=self.pid)

    @property
    def collected(self) -> int:
        """Deprecated: reads ``repro_replica_collected_entries_total``."""
        return int(self._collected.value)

    def _base_state(self) -> Any:
        return self._base

    def on_update(self, update) -> Sequence[Any]:
        out = super().on_update(update)
        self._advance_own_heard()
        self._maybe_gc()
        return out

    def on_message(self, src: int, payload) -> Sequence[Any]:
        if isinstance(payload, tuple) and payload and payload[0] == self.HEARTBEAT:
            _, cl, j = payload
            self.clock.merge(cl)
            if src == j:
                # Only the author's own channel carries the FIFO
                # completeness claim; a forwarded heartbeat would assert
                # another channel's delivery order.
                self.heard[j] = max(self.heard[j], cl)
            self._maybe_gc()
            return ()
        if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
            # Other control payloads (the anti-entropy handshake): the
            # base class dispatches them; sync-resp entries go through
            # _ingest_synced, which tolerates sub-floor duplicates and
            # never advances ``heard`` (a paged update arrives on the
            # responder's channel, not its author's, so it carries no
            # FIFO completeness claim).
            return super().on_message(src, payload)
        cl, j, _u = payload
        if cl <= self._gc_clock_floor:
            raise StabilityViolation(
                f"update stamped {(cl, j)} arrived under the collected "
                f"floor {self._gc_clock_floor}; use FIFO channels with GC"
            )
        if src == j:
            # As with heartbeats: the claim "every j-update with a smaller
            # clock has been delivered" is only sound on j's own FIFO
            # channel.  Before v2, a sync-resp entry relayed by a peer
            # advanced ``heard`` too, silently over-advancing the frontier.
            self.heard[j] = max(self.heard[j], cl)
        out = super().on_message(src, payload)
        self._maybe_gc()
        return out

    def heartbeat(self) -> tuple:
        """A clock-only payload keeping the stability frontier moving.

        Callers broadcast it via the cluster's network; it carries no
        update, so it does not appear in the distributed history.
        """
        self._advance_own_heard()
        return (self.HEARTBEAT, self.clock.value, self.pid)

    def _advance_own_heard(self) -> None:
        """Advance the own ``heard`` column to the clock — unless a
        truncated restore left this replica unsure it still has all of
        its own pre-crash updates (see ``_own_suspect_below``)."""
        if not self._own_suspect_below:
            self.heard[self.pid] = max(self.heard[self.pid], self.clock.value)

    def _maybe_gc(self) -> None:
        self._since_gc += 1
        if self._since_gc >= self.gc_interval:
            self._since_gc = 0
            self.collect_garbage()

    def collect_garbage(self) -> int:
        """Fold the stable prefix into the base state; return entries freed.

        An update ``(cl, j)`` is stable when ``cl <= min(heard)``: over FIFO
        channels every not-yet-received message from process ``k`` was sent
        after the one stamped ``heard[k]``, so it carries a clock of at
        least ``heard[k] + 1 > cl`` (Lamport monotonicity) and can never
        sort into or before the prefix.
        """
        frontier = min(self.heard)
        if frontier > self._gc_clock_floor:
            # The floor is a completeness claim, not a fold marker: every
            # update with clock <= min(heard) is known (FIFO + Lamport
            # monotonicity), so it may advance even when nothing in the
            # live log falls under it.  _known no longer needs to
            # enumerate ids at or below it.
            self._gc_clock_floor = frontier
            self._known = {uid for uid in self._known if uid[0] > frontier}
        cut = bisect.bisect_left(
            self.updates, (frontier + 1,), key=lambda s: (s[0], s[1])
        )
        if cut == 0:
            return 0
        # Fold the prefix into the base state.
        state = self._base
        for cl, j, update in self.updates[:cut]:
            state = self.spec.apply(state, update)
            self._gc_frontier = (cl, j)
        self._base = state
        del self.updates[:cut]
        # Shift cached replay structures left by `cut`.
        self._applied = max(0, self._applied - cut)
        shifted = [(i - cut, s) for i, s in self._checkpoints if i - cut >= 0]
        self._checkpoints = shifted if shifted else [(0, self._base)]
        if not any(i == 0 for i, _ in self._checkpoints):
            self._checkpoints.insert(0, (0, self._base))
        # The cached state may predate the fold; recompute conservatively.
        self._applied, self._state = self._checkpoints[0]
        for i, s in self._checkpoints:
            if i <= len(self.updates):
                self._applied, self._state = i, s
        self._collected.inc(cut)
        return cut

    def on_query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        out = super().on_query(name, args)
        if self.track_witness and self._last_meta:
            # The folded prefix is reported as a floor instead of an
            # enumerated uid list (which would grow forever and defeat
            # GC's space bound): every update with clock <= the floor was
            # visible.  Trace consumers expand it against the recorded
            # update timestamps.
            self._last_meta["visible_floor"] = self._gc_clock_floor
        return out

    # -- anti-entropy v2: digests, state transfer, durable state --------------------

    def _sync_digest(self) -> SyncDigest:
        """Floors from the ``heard`` vector (the same reliable-FIFO
        argument that makes the stable prefix stable certifies "I know
        every j-update with clock <= heard[j]"), exception runs for the
        handful of ids learned above it (paged in by earlier sync
        rounds), and consent to install a state transfer."""
        return SyncDigest.from_uids(
            self._known, self.n,
            floors=tuple(self.heard),
            accepts_state=True,
        )

    def _covers_uid(self, cl: int, j: int) -> bool:
        """Ids at or below the GC floor are known implicitly: they are
        folded into the base state and pruned from ``_known``."""
        return cl <= self._gc_clock_floor or (cl, j) in self._known

    def _serve_sync(self, requester: int, digest: SyncDigest) -> None:
        floor = self._gc_clock_floor
        if floor > 0 and any(
            digest.coverage_floor(j) < floor for j in range(self.n)
        ):
            # The requester is missing updates at or below our floor.
            # Those are folded into the base state and cannot be
            # enumerated, let alone paged — hand the compacted state off.
            if not digest.accepts_state:
                raise StateTransferRequired(
                    f"replica {requester} is missing updates at or below "
                    f"replica {self.pid}'s GC floor {floor}, which only a "
                    "state transfer can repair, but its digest does not "
                    "accept one (a v1 requester, or a replica without a "
                    "base state)"
                )
            handoff = StateHandoff(
                base=self._base,
                clock_floor=floor,
                frontier=self._gc_frontier,
                heard=tuple(self.heard),
            )
            self.send_to(requester, handoff.payload(self.pid))
            self._state_transfers.inc()
        super()._serve_sync(requester, digest)

    def _on_sync_state(self, src: int, payload: tuple) -> Sequence[Any]:
        sender, handoff = StateHandoff.parse(payload)
        if self.install_gc_state(
            base=handoff.base,
            clock_floor=handoff.clock_floor,
            frontier=handoff.frontier,
        ):
            self._state_installs.inc()
        return ()

    def install_gc_state(
        self,
        *,
        base: Any,
        clock_floor: int,
        frontier: tuple[int, int] | None = None,
    ) -> bool:
        """Adopt a compacted base state certified complete to
        ``clock_floor`` (from a state transfer or a durable snapshot).

        Safe because the sender's floor is a completeness claim over
        *every* author: the handed-off base contains every update with
        clock <= floor, so our live entries at or below it are duplicates
        of folded content and our own base (complete to a lower floor) is
        subsumed.  The clock is merged up to the floor first — a replica
        that adopted a floor and then stamped an update at or below it
        would violate its own peers' stability check.  Returns False (and
        installs nothing) when our floor is already at least as high.
        """
        self.clock.merge(clock_floor)
        if clock_floor <= self._gc_clock_floor:
            return False
        cut = bisect.bisect_left(
            self.updates, (clock_floor + 1,), key=lambda s: (s[0], s[1])
        )
        del self.updates[:cut]
        self._base = base
        self._gc_clock_floor = clock_floor
        if frontier is not None:
            previous = self._gc_frontier
            self._gc_frontier = (
                frontier if previous is None else max(previous, frontier)
            )
        for j in range(self.n):
            self.heard[j] = max(self.heard[j], clock_floor)
        self._known = {uid for uid in self._known if uid[0] > clock_floor}
        # Cached replay structures predate the new base; rebuild from it.
        self._applied, self._state = 0, base
        self._checkpoints = [(0, base)]
        if self._own_suspect_below and clock_floor >= self._own_suspect_below:
            # The floor certifies every update (ours included) at or
            # below it, so the amnesia gap is provably repaired.
            self._own_suspect_below = 0
        return True

    def durable_gc_state(self) -> dict[str, Any]:
        """The GC-specific durable state for a snapshot: the compacted
        base, its completeness floor, the fold frontier and the ``heard``
        vector.  The base is an atomically-rewritten compacted segment in
        the on-disk model — unlike live log entries it is never truncated
        by a missed fsync (see :mod:`repro.sim.persist`)."""
        return {
            "base": self._base,
            "clock_floor": self._gc_clock_floor,
            "frontier": self._gc_frontier,
            "heard": tuple(self.heard),
        }

    def finish_restore(
        self, pre_crash_clock: int, heard: Sequence[int] | None = None
    ) -> None:
        """Re-derive sound ``heard`` claims after a snapshot restore.

        With a complete snapshot (``heard`` given) the stored vector is
        adopted verbatim.  After a *truncated* restore the stored vector
        may over-claim — the lost log tail could contain updates the
        claims cover — so each column is rewound to what the surviving
        state proves: the floor (base completeness) raised by the highest
        surviving log clock per author (sound because truncation keeps a
        global ``(clock, pid)``-prefix, hence a per-author clock-prefix).
        If the pre-crash clock exceeds the rewound own column, this
        replica may have lost *its own* updates, and the own column is
        frozen until a state transfer certifies a floor above the gap.
        """
        if heard is not None:
            for j, claimed in enumerate(heard[: self.n]):
                self.heard[j] = max(self.heard[j], int(claimed))
            return
        for j in range(self.n):
            self.heard[j] = max(self.heard[j], self._gc_clock_floor)
        for cl, j, _u in self.updates:
            self.heard[j] = max(self.heard[j], cl)
        if pre_crash_clock > self.heard[self.pid]:
            self._own_suspect_below = pre_crash_clock

    @property
    def live_log_length(self) -> int:
        return len(self.updates)

    @property
    def gc_clock_floor(self) -> int:
        """Completeness floor of the base state: every update with clock
        at or below it (from any author) has been folded into ``_base``."""
        return self._gc_clock_floor

    @property
    def known_ids_tracked(self) -> int:
        """Ids enumerated in ``_known`` (the floor covers the rest) —
        the quantity satellite benchmarks assert stays bounded."""
        return len(self._known)
