"""Section VII-C optimization: undo/redo re-positioning of late updates.

The paper compares Algorithm 1 with Karsenty & Beaudouin-Lafon's groupware
algorithm [ICDCS 1993], which assumes every update ``u`` has an inverse
``u⁻¹`` with ``T(T(s, u), u⁻¹) = s`` and "uses the undo operations to
position newly known updates at their correct place, which saves
computation time".

:class:`UndoReplica` implements that strategy on top of the same
timestamped log: the replica maintains the fully-applied current state at
all times.  When a message arrives whose timestamp sorts before already
applied updates, it *undoes* the displaced suffix (in reverse order),
applies the newcomer, and *redoes* the suffix — O(displacement) work
instead of O(log) replay.  Queries are then O(1): they observe the
maintained state.

Only specifications flagged ``invertible_updates`` (e.g. the counter and
the append-only log) qualify; the constructor refuses others.  The
commutative fast path is deliberately disabled here — undo/redo *is* this
replica's incremental-maintenance strategy, and the benches compare it
against the fast path as a distinct point in the design space.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.core.adt import UQADT
from repro.core.universal import Stamped, UniversalReplica


class UndoReplica(UniversalReplica):
    """Algorithm 1 with Karsenty–Beaudouin-Lafon undo/redo maintenance."""

    __slots__ = ("_state", "undone_redone")

    def __init__(
        self,
        pid: int,
        n: int,
        spec: UQADT,
        *,
        track_witness: bool = True,
    ) -> None:
        if not spec.invertible_updates:
            raise ValueError(
                f"{spec.name!r} updates are not invertible; the undo "
                f"optimization requires T(T(s,u),u⁻¹)=s for all s"
            )
        super().__init__(pid, n, spec, track_witness=track_witness,
                         fast_path=False)
        self._state: Any = spec.initial_state()
        self.undone_redone = 0  # total undo+redo steps (bench metric)

    def _after_insert(self, pos: int, stamped: Stamped) -> None:
        # The newcomer already sits at ``pos``; everything after it is the
        # displaced suffix.  Undo it newest-first, apply, redo.
        displaced = self.updates[pos + 1:]
        state = self._state
        for _, _, u in reversed(displaced):
            state = self.spec.unapply(state, u)
        state = self.spec.apply(state, stamped[2])
        for _, _, u in displaced:
            state = self.spec.apply(state, u)
        self.undone_redone += 2 * len(displaced) + 1
        self._state = state

    def _replay_state(self) -> Any:
        # The state is maintained incrementally; queries cost O(1).
        return self._state

    def _peek_state(self) -> Any:
        return self._state

    def on_query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        return super().on_query(name, args)

    def local_state(self) -> Any:
        return self._state
