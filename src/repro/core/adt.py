"""Update-query abstract data types (Definition 1 of the paper).

A UQ-ADT is a transition system ``(U, Qi, Qo, S, s0, T, G)``:

* ``U`` — update operations: side-effecting, no return value;
* ``Qi × Qo`` — query operations ``qi/qo`` (input ``qi`` returns ``qo``);
* ``T : S × U -> S`` — transition function;
* ``G : S × Qi -> Qo`` — output function.

A sequential history (a word over ``U ∪ Q``) is *recognized* when replaying
it from ``s0`` makes every query output match ``G`` of the current state.
``L(O)`` — the recognized language — is the sequential specification that
every consistency criterion in :mod:`repro.core.criteria` refers to.

Concrete data types live in :mod:`repro.specs`; they subclass
:class:`UQADT` and implement ``apply`` (= ``T``) and ``observe`` (= ``G``).
Operations themselves are *symbolic* (:class:`Update`, :class:`Query`
dataclasses) so the same history object can be checked against different
specifications and shipped through the simulator as plain messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Sequence


@dataclass(frozen=True, slots=True)
class Update:
    """A symbolic update operation ``name(*args)``.

    Updates have a side effect and no return value (they label transitions
    of the UQ-ADT).  Equality is structural, so the same update issued twice
    compares equal — histories distinguish the two *events* carrying it.
    """

    name: str
    args: tuple[Hashable, ...] = ()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


@dataclass(frozen=True, slots=True)
class Query:
    """A symbolic query ``qi/qo``: input ``name(*args)`` observed to return
    ``output``.

    In the paper a query operation is the *pair* (input, output); a history
    records what each read actually returned, and the criteria decide
    whether those returns are explainable.
    """

    name: str
    args: tuple[Hashable, ...] = ()
    output: Any = None

    @property
    def input_part(self) -> tuple[str, tuple[Hashable, ...]]:
        """The ``qi`` component (used to evaluate ``G`` against a state)."""
        return (self.name, self.args)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})/{self.output!r}"


Operation = Update | Query

#: Sentinel distinguishing "no state supplied" from a legitimate ``None`` state.
_NO_STATE = object()


class UQADT:
    """Base class for sequential specifications.

    Subclasses provide:

    * :attr:`name` — human-readable type name;
    * :meth:`initial_state` — ``s0`` (must be a fresh or immutable value);
    * :meth:`apply` — the transition function ``T`` (must *not* mutate the
      input state; return a new state);
    * :meth:`observe` — the output function ``G``;
    * optionally :meth:`solve_state` — given query constraints, produce a
      state satisfying all of them (used by the eventual-consistency
      checkers, where the consistent state is *any* element of ``S``, not
      necessarily reachable);
    * optionally :meth:`canonical` — hashable canonical form of a state
      (defaults to the state itself), used to compare states for equality
      across replicas.
    """

    name: str = "uq-adt"
    #: True when every pair of updates commutes (pure CRDT in the sense of
    #: Section VII-C); enables the commutative fast path.
    commutative_updates: bool = False
    #: True when every update ``u`` has an inverse with
    #: ``T(T(s, u), u⁻¹) = s`` for *all* states — the precondition of the
    #: Karsenty–Beaudouin-Lafon undo optimization (:mod:`repro.core.undo`).
    #: Implementations must then provide :meth:`unapply`.
    invertible_updates: bool = False

    # -- the transition system -------------------------------------------------

    def initial_state(self) -> Any:
        """The initial state ``s0`` (a fresh or immutable value)."""
        raise NotImplementedError

    def apply(self, state: Any, update: Update) -> Any:
        """Transition function ``T``.  Must be pure (no mutation)."""
        raise NotImplementedError

    def observe(self, state: Any, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        """Output function ``G``."""
        raise NotImplementedError

    def unapply(self, state: Any, update: Update) -> Any:
        """Inverse transition: ``unapply(apply(s, u), u) == s`` for all s.

        Only meaningful when :attr:`invertible_updates` is True; the undo
        optimization uses it to re-position late updates without a full
        replay (Section VII-C's discussion of [Karsenty & Beaudouin-Lafon]).
        """
        raise NotImplementedError(f"{self.name} updates are not invertible")

    def apply_batch(self, state: Any, updates: Sequence[Update]) -> Any:
        """Fold a whole update sequence into the state.

        Semantically always equal to ``functools.reduce(self.apply, ...)``
        (property-tested); the point is performance: specs override it
        with vectorized or single-pass implementations (numpy delta sums
        for the counter, one concatenation for the log, a reverse
        membership pass for the set), which the replay-based replicas use
        for their hot loop.  "Vectorizing for loops" and "in-place-style
        batch work" are the standard scientific-Python levers — measured
        in ``benchmarks/bench_ablation_batch.py``.
        """
        for update in updates:
            state = self.apply(state, update)
        return state

    def probe_updates(self) -> Sequence[Update]:
        """A small generator set of updates exercising the spec's algebra.

        Used by tooling that checks *declared* properties against observed
        behaviour — most importantly ``uqlint``'s UQ006 rule, which tries
        every pair from this set in both orders to catch a spec declaring
        :attr:`commutative_updates` whose ``apply`` is order-sensitive.
        The set should cover the interesting conflicts (an insert and a
        delete of the same element, two writes to the same key...); a pair
        of probes commuting is evidence, not proof.  Specs declaring
        commutativity without providing probes are flagged as unverifiable.
        """
        return ()

    # -- derived machinery -----------------------------------------------------

    def evaluate(self, state: Any, query: Query) -> Any:
        """``G`` applied to a symbolic query's input part."""
        return self.observe(state, query.name, query.args)

    def satisfies(self, state: Any, query: Query) -> bool:
        """True iff ``G(state, qi) == qo`` for the recorded pair ``qi/qo``."""
        return self.evaluate(state, query) == query.output

    def replay(self, operations: Iterable[Operation], state: Any = _NO_STATE) -> Any:
        """Final state after applying the updates of ``operations`` in order.

        Queries in the sequence are ignored (they do not change the state);
        use :meth:`recognizes` to additionally validate their outputs.
        Passing ``state`` replays from that state instead of ``s0`` (``None``
        is a legal state for e.g. registers, hence the private sentinel).
        """
        s = self.initial_state() if state is _NO_STATE else state
        for op in operations:
            if isinstance(op, Update):
                s = self.apply(s, op)
        return s

    def recognizes(self, word: Sequence[Operation]) -> bool:
        """Membership in ``L(O)``: replay ``word`` checking every query."""
        state = self.initial_state()
        for op in word:
            if isinstance(op, Update):
                state = self.apply(state, op)
            elif isinstance(op, Query):
                if not self.satisfies(state, op):
                    return False
            else:  # pragma: no cover - defensive
                raise TypeError(f"not an operation: {op!r}")
        return True

    def first_violation(self, word: Sequence[Operation]) -> int | None:
        """Index of the first query whose output contradicts the replay,
        or ``None`` if the word is recognized (diagnostics helper)."""
        state = self.initial_state()
        for i, op in enumerate(word):
            if isinstance(op, Update):
                state = self.apply(state, op)
            elif not self.satisfies(state, op):
                return i
        return None

    # -- hooks for the criteria checkers ----------------------------------------

    def solve_state(self, constraints: Sequence[Query]) -> Any | None:
        """A state satisfying every ``qi/qo`` constraint, or ``None``.

        The eventual-consistency criteria quantify existentially over *all*
        states of ``S`` (not only reachable ones).  Concrete specs override
        this with an exact solver; the default conservatively returns
        ``None`` when constraints are non-empty and cannot be discharged,
        which makes the checkers *sound but incomplete* for exotic specs.
        """
        if not constraints:
            return self.initial_state()
        state = self.initial_state()
        if all(self.satisfies(state, q) for q in constraints):
            return state
        return None

    def canonical(self, state: Any) -> Hashable:
        """Hashable canonical form for state comparison across replicas."""
        return _canonical(state)

    def states_equal(self, a: Any, b: Any) -> bool:
        """Structural state equality via :meth:`canonical`."""
        return self.canonical(a) == self.canonical(b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def fresh_state(value: Any) -> Any:
    """A structurally equal value sharing no mutable containers with ``value``.

    ``initial_state`` must return a *fresh or immutable* ``s0`` (Def. 1):
    a spec configured with a mutable initial value (``RegisterSpec([])``)
    would otherwise hand the same object to every replay, and one in-place
    change would corrupt all replicas at once.  Immutable values are
    returned as-is (no copying cost on the common path).
    """
    if isinstance(value, list):
        return [fresh_state(v) for v in value]
    if isinstance(value, dict):
        return {k: fresh_state(v) for k, v in value.items()}
    if isinstance(value, set):
        return {fresh_state(v) for v in value}
    if isinstance(value, bytearray):
        return bytearray(value)
    if isinstance(value, tuple):
        return tuple(fresh_state(v) for v in value)
    return value


def _canonical(state: Any) -> Hashable:
    """Best-effort hashable canonicalization of common state shapes."""
    if isinstance(state, (set, frozenset)):
        return frozenset(_canonical(x) for x in state)
    if isinstance(state, dict):
        return tuple(sorted((k, _canonical(v)) for k, v in state.items()))
    if isinstance(state, list):
        return tuple(_canonical(x) for x in state)
    if isinstance(state, tuple):
        return tuple(_canonical(x) for x in state)
    return state
