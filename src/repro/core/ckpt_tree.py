"""Dyadically-thinned checkpoint store for incremental replay.

:class:`~repro.core.checkpoint.CheckpointedReplica` used to keep *every*
``checkpoint_interval``-th intermediate state in a linear list: memory
grew linearly with the log, and a late message popped the list entry by
entry to find a survivor.  :class:`CheckpointTree` replaces that list with
a store that keeps checkpoints *dense near the replay tip and sparse far
behind it* — the classic dyadic/geometric retention scheme (the same idea
as multi-level undo snapshots or reverse-mode autodiff checkpointing):

* ``record(index, state)`` appends a checkpoint and then *thins*: an
  interior checkpoint is dropped when merging its two adjacent gaps still
  leaves a gap no larger than the distance from there to the tip.  At the
  fixpoint consecutive distances-to-tip at least double every two kept
  entries, so at most ``O(log n)`` checkpoints survive for a length-``n``
  replayed prefix.
* ``rollback(pos)`` — a late message landed at ``pos`` — discards the
  checkpoints above ``pos`` with one :func:`bisect.bisect_right` + slice
  delete and returns the best survivor, instead of popping one entry at a
  time.  Because gaps shrink toward the tip, the re-replay that follows is
  proportional to the message's *lateness* (distance from the tip), not to
  the full history.
* ``shift_left(cut, base_state)`` renumbers after stable-prefix GC folded
  the first ``cut`` log entries into a new base state (the surviving
  checkpoints' states already contain that prefix, so only their indices
  move).

Entries are kept in two parallel lists (indices and states) rather than
``(index, state)`` tuples: the index list is what every bisect touches,
and a flat ``list[int]`` keeps that search allocation-free.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterator


class CheckpointTree:
    """O(log n) checkpoints over a replayed prefix, densest near the tip.

    Invariant: indices are strictly increasing and index 0 (the base
    state) is always present, so :meth:`rollback` and
    :meth:`best_at_or_below` always find a survivor.
    """

    __slots__ = ("_indices", "_states")

    def __init__(self, base_state: Any) -> None:
        self._indices: list[int] = [0]
        self._states: list[Any] = [base_state]

    def __len__(self) -> int:
        return len(self._indices)

    def __iter__(self) -> Iterator[tuple[int, Any]]:
        return iter(zip(self._indices, self._states))

    @property
    def base_state(self) -> Any:
        return self._states[0]

    @property
    def tip_index(self) -> int:
        """Highest checkpointed replay position."""
        return self._indices[-1]

    def indices(self) -> list[int]:
        """The retained checkpoint positions, ascending (for inspection)."""
        return list(self._indices)

    # -- updates ---------------------------------------------------------------

    def record(self, index: int, state: Any) -> None:
        """Checkpoint ``state`` as the fold of the first ``index`` updates.

        Indices must arrive in increasing order between rollbacks;
        re-recording at or below the tip is ignored (the caller replayed
        nothing new).
        """
        if index <= self._indices[-1]:
            return
        self._indices.append(index)
        self._states.append(state)
        self._thin()

    def _thin(self) -> None:
        """Restore the dyadic retention invariant after an append.

        Drop an interior checkpoint ``i`` whenever the merged gap
        ``idx[i+1] - idx[i-1]`` is at most the distance from ``idx[i+1]``
        to the tip: any rollback landing inside the merged gap is already
        that late, so re-replaying the gap does not change the asymptotic
        cost.  At the fixpoint ``d(i-1) > 2 * d(i+1)`` for every interior
        ``i`` (``d`` = distance to tip), giving the O(log n) size bound.
        """
        idx = self._indices
        states = self._states
        tip = idx[-1]
        changed = True
        while changed:
            changed = False
            i = 1
            while i < len(idx) - 1:
                if idx[i + 1] - idx[i - 1] <= tip - idx[i + 1]:
                    del idx[i]
                    del states[i]
                    changed = True
                else:
                    i += 1

    def rollback(self, pos: int) -> tuple[int, Any]:
        """A late message was inserted at ``pos``: invalidate everything
        above it and return the surviving ``(index, state)`` to resume
        replay from.  O(log n): one bisect plus a slice delete."""
        cut = bisect_right(self._indices, pos)
        del self._indices[cut:]
        del self._states[cut:]
        return self._indices[-1], self._states[-1]

    def best_at_or_below(self, pos: int) -> tuple[int, Any]:
        """The deepest checkpoint not past ``pos``, without invalidating."""
        i = bisect_right(self._indices, pos) - 1
        return self._indices[i], self._states[i]

    def shift_left(self, cut: int, base_state: Any) -> None:
        """Renumber after GC folded the log's first ``cut`` entries into
        ``base_state``.

        A surviving checkpoint's state is the fold of the old base plus
        the first ``index`` log entries; since the collected prefix is
        exactly the first ``cut`` of those, that same state equals the new
        base folded with the first ``index - cut`` *remaining* entries —
        only the index changes.  Checkpoints inside the collected prefix
        are subsumed by the new base and dropped.
        """
        if cut <= 0:
            return
        idx = self._indices
        states = self._states
        keep = bisect_right(idx, cut)  # first strictly-above-cut entry
        new_indices = [0]
        new_states = [base_state]
        for i in range(keep, len(idx)):
            new_indices.append(idx[i] - cut)
            new_states.append(states[i])
        self._indices = new_indices
        self._states = new_states

    def reset(self, base_state: Any) -> None:
        """Forget everything; keep only a fresh base checkpoint at 0
        (used when a state transfer replaces the base wholesale)."""
        self._indices = [0]
        self._states = [base_state]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointTree(indices={self._indices!r})"
