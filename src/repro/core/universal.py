"""Algorithm 1 — the universal strong-update-consistent construction.

Every UQ-ADT has a wait-free SUC implementation (Proposition 4).  Each
replica keeps:

* ``clock`` — a Lamport clock (line 2);
* ``updates`` — every timestamped update it has heard of, kept sorted by
  the ``(clock, pid)`` lexicographic order (line 3).

``update(u)`` ticks the clock and broadcasts ``(clock, pid, u)`` (lines
4-7); the replica applies its own message immediately (the proof's
"messages are received instantaneously by the sender").  ``query(q)``
ticks the clock, replays *all* known updates in timestamp order from the
initial state, and evaluates the query on the result (lines 12-19).  No
operation ever waits on the network: this is wait-freedom, and it is why
the construction only achieves update consistency — a query may replay an
update log missing concurrent remote updates, returning an out-dated
value, but all replicas converge to the state of the agreed linearization.

The replica also records the Definition 9 witness as it runs (timestamps
= the arbitration ``≤``; the set of received updates at query time = the
visibility relation), which is exactly how Proposition 4's proof certifies
correctness.  Witness tracking is optional (``track_witness=False``) for
performance benchmarking of the algorithm proper.

Subclasses implement the Section VII-C optimizations:
:class:`repro.core.checkpoint.CheckpointedReplica` (cached intermediate
states, recomputed only when a late message arrives) and
:class:`repro.core.undo.UndoReplica` (Karsenty–Beaudouin-Lafon undo/redo).
"""

from __future__ import annotations

import bisect
from typing import Any, Hashable, Iterable, Sequence

from repro.core.adt import UQADT, Update
from repro.obs.metrics import MetricsRegistry
from repro.sim.replica import Replica
from repro.util.clocks import LamportClock

#: A timestamped update as shipped on the wire: ``(clock, pid, update)``.
Stamped = tuple[int, int, Update]


class UniversalReplica(Replica):
    """One process's state of Algorithm 1 for an arbitrary UQ-ADT.

    Beyond the paper's lines 1-20, the replica speaks a small anti-entropy
    dialect used by crash-recovery and lossy-channel repair: a peer may
    broadcast a :meth:`sync_request` carrying its set of known update ids;
    receivers reply point-to-point with the updates the requester lacks,
    and counter-request anything the requester knows that they do not.
    Control payloads are tuples tagged with a leading string, so they can
    never be confused with ``(clock, pid, update)`` wire triples.
    """

    #: control-payload tags (anti-entropy handshake).
    SYNC_REQ = "sync-req"
    SYNC_RESP = "sync-resp"

    def __init__(
        self,
        pid: int,
        n: int,
        spec: UQADT,
        *,
        track_witness: bool = True,
        relay: bool = False,
        batch_replay: bool = True,
    ) -> None:
        super().__init__(pid, n)
        self.spec = spec
        #: fold the log with :meth:`UQADT.apply_batch` (vectorized /
        #: single-pass per spec) instead of one ``apply`` call per update.
        self.batch_replay = batch_replay
        self.clock = LamportClock(pid)
        self.updates: list[Stamped] = []
        self.track_witness = track_witness
        #: epidemic relay: re-broadcast first-seen updates.  Algorithm 1
        #: assumes *reliable* broadcast — all-or-nothing delivery even when
        #: the sender crashes mid-broadcast.  Point-to-point channels only
        #: give that for correct senders; flooding upgrades them to uniform
        #: reliable broadcast at the cost of O(n) messages per update per
        #: replica.  Needed only under crash-with-message-loss adversaries.
        self.relay = relay
        self._known: set[tuple[int, int]] = set()
        self._last_meta: dict[str, Any] = {}

    # -- observability ---------------------------------------------------------------

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        super().bind_metrics(registry)
        #: replay effort accounting (Section VII-C query replay cost).
        self._replayed = registry.counter(
            "repro_replica_replayed_updates_total",
            help="updates folded while answering queries (Section VII-C "
            "replay cost of Algorithm 1 and its optimizations)",
            label_names=("pid",),
        ).labels(pid=self.pid)

    @property
    def replayed_updates(self) -> int:
        """Deprecated: reads ``repro_replica_replayed_updates_total``."""
        return int(self._replayed.value)

    # -- Algorithm 1 ---------------------------------------------------------------

    def on_update(self, update: Update) -> Sequence[Any]:
        ts = self.clock.tick()  # line 5
        stamped: Stamped = (ts.clock, ts.pid, update)
        self._known.add((ts.clock, ts.pid))
        self._insert(stamped)  # instantaneous self-delivery
        if self.track_witness:
            self._last_meta = {"timestamp": (ts.clock, ts.pid)}
        return [stamped]  # line 6: broadcast

    def on_message(self, src: int, payload: Any) -> Sequence[Any]:
        if isinstance(payload, tuple) and payload and payload[0] == self.SYNC_REQ:
            return self._on_sync_request(payload)
        if isinstance(payload, tuple) and payload and payload[0] == self.SYNC_RESP:
            extra: list[Any] = []
            for stamped in payload[1]:
                extra.extend(self.on_message(src, stamped))
            return extra
        cl, j, update = payload
        if (cl, j) in self._known:
            return ()  # relayed / network duplicate
        self._known.add((cl, j))
        self.clock.merge(cl)  # line 9
        self._insert((cl, j, update))  # line 10
        return [payload] if self.relay else ()

    # -- anti-entropy (crash-recovery & lossy-channel repair) -----------------------

    def sync_request(self) -> tuple:
        """The pull half of the anti-entropy handshake: broadcast this and
        every receiver replies with the updates this replica is missing."""
        return (self.SYNC_REQ, self.pid, frozenset(self._known))

    def _on_sync_request(self, payload: tuple) -> Sequence[Any]:
        _, requester, known = payload
        missing = [s for s in self.updates if (s[0], s[1]) not in known]
        if missing:
            self.send_to(requester, (self.SYNC_RESP, tuple(missing)))
        if known - self._known:
            # The requester has updates we lack (e.g. restored from its
            # durable log after a crash): pull them back.
            self.send_to(requester, self.sync_request())
        return ()

    def load_log(self, entries: Iterable[Stamped]) -> int:
        """Rebuild from a durable update log (crash-recovery).

        Folds each entry through the normal insertion path (deduplicated,
        clock-merged), so a truncated log — an fsync that missed the tail —
        is safe: the anti-entropy handshake refetches the rest.  Returns
        the number of entries actually loaded.
        """
        loaded = 0
        for cl, j, update in entries:
            if (cl, j) in self._known:
                continue
            self._known.add((cl, j))
            self.clock.merge(cl)
            self._insert((cl, j, update))
            loaded += 1
        return loaded

    def on_query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        ts = self.clock.tick()  # line 13
        state = self._replay_state()  # lines 14-17
        if self.track_witness:
            self._last_meta = {
                "timestamp": (ts.clock, ts.pid),
                "visible": frozenset((cl, j) for cl, j, _ in self.updates),
            }
        return self.spec.observe(state, name, args)  # line 18

    # -- internals -----------------------------------------------------------------

    def _insert(self, stamped: Stamped) -> None:
        """Insert keeping the ``(clock, pid)`` sort (line 15's order).

        ``(clock, pid)`` pairs are unique across updates, so the comparison
        never reaches the (orderless) update payload.
        """
        bisect.insort(self.updates, stamped, key=lambda s: (s[0], s[1]))

    def _replay_state(self) -> Any:
        """Full replay — lines 14-17 (optionally batch-folded)."""
        self._replayed.inc(len(self.updates))
        if self.batch_replay:
            return self.spec.apply_batch(
                self.spec.initial_state(), [u for _, _, u in self.updates]
            )
        state = self.spec.initial_state()
        for _, _, update in self.updates:
            state = self.spec.apply(state, update)
        return state

    # -- introspection --------------------------------------------------------------

    def local_state(self) -> Any:
        return self._replay_state()

    def witness_meta(self) -> dict[str, Any]:
        meta, self._last_meta = self._last_meta, {}
        return meta

    @property
    def log_length(self) -> int:
        return len(self.updates)

    def known_timestamps(self) -> list[tuple[int, int]]:
        return [(cl, j) for cl, j, _ in self.updates]
