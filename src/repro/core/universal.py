"""Algorithm 1 — the universal strong-update-consistent construction.

Every UQ-ADT has a wait-free SUC implementation (Proposition 4).  Each
replica keeps:

* ``clock`` — a Lamport clock (line 2);
* ``updates`` — every timestamped update it has heard of, kept sorted by
  the ``(clock, pid)`` lexicographic order (line 3).

``update(u)`` ticks the clock and broadcasts ``(clock, pid, u)`` (lines
4-7); the replica applies its own message immediately (the proof's
"messages are received instantaneously by the sender").  ``query(q)``
ticks the clock, replays *all* known updates in timestamp order from the
initial state, and evaluates the query on the result (lines 12-19).  No
operation ever waits on the network: this is wait-freedom, and it is why
the construction only achieves update consistency — a query may replay an
update log missing concurrent remote updates, returning an out-dated
value, but all replicas converge to the state of the agreed linearization.

The replica also records the Definition 9 witness as it runs (timestamps
= the arbitration ``≤``; the set of received updates at query time = the
visibility relation), which is exactly how Proposition 4's proof certifies
correctness.  Witness tracking is optional (``track_witness=False``) for
performance benchmarking of the algorithm proper.

Two hot-path refinements live here beside the verbatim algorithm:

* **The commutative fast path** (Section VII-C: "if all the update
  operations commute ... a naive implementation, that applies the updates
  on a replica as soon as the notification is received, achieves update
  consistency").  When the spec declares ``commutative_updates`` — or the
  caller forces ``fast_path=True`` — the replica *additionally* maintains
  the arrival-order fold of every known update and answers queries from
  it in O(1), skipping the sorted-log replay entirely.  The sorted log,
  the ``(clock, pid)`` keys and the witness metadata are maintained
  exactly as before: anti-entropy, persistence, GC and SUC witnesses are
  oblivious to which path answered the query.  Pass ``fast_path=False``
  to benchmark the replay machinery itself on a commutative spec.
* **Replay-cost accounting is charged to queries only.**
  ``repro_replica_replayed_updates_total`` is the Section VII-C query
  replay cost that benches and the run report consume; introspection
  (:meth:`local_state`, convergence checks, anti-entropy's agreement
  test) goes through the side-effect-free :meth:`_peek_state` and leaves
  the counter untouched.

Subclasses implement the remaining Section VII-C optimizations:
:class:`repro.core.checkpoint.CheckpointedReplica` (cached intermediate
states, recomputed only when a late message arrives) and
:class:`repro.core.undo.UndoReplica` (Karsenty–Beaudouin-Lafon undo/redo).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Hashable, Iterable, Sequence

from repro.core.adt import UQADT, Update
from repro.core import sync as sync_protocol
from repro.core.sync import (
    SyncDigest,
    SyncProtocolError,
    pages,
    parse_sync_request,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim.replica import Replica
from repro.util.clocks import LamportClock

#: A timestamped update as shipped on the wire: ``(clock, pid, update)``.
#: Plain tuples, not dataclasses: these are the hottest objects in the
#: repo (one per update per replica) and tuple allocation + indexing beats
#: any attribute access on the replay path.
Stamped = tuple[int, int, Update]


class UniversalReplica(Replica):
    """One process's state of Algorithm 1 for an arbitrary UQ-ADT.

    Beyond the paper's lines 1-20, the replica speaks the anti-entropy v2
    dialect of :mod:`repro.core.sync`, used by crash-recovery and
    lossy-channel repair: a peer broadcasts a :meth:`sync_request`
    carrying a compact :class:`~repro.core.sync.SyncDigest` of its
    knowledge (per-author completeness floors plus exception runs);
    receivers reply point-to-point with the updates the requester lacks,
    split into pages of at most ``sync_page_size`` entries, and
    counter-request when the digest claims ids they do not know.  v1
    requests (a frozenset of every known id) are still served.  Control
    payloads are tuples tagged with a leading string, so they can never
    be confused with ``(clock, pid, update)`` wire triples.
    """

    __slots__ = (
        "spec",
        "sync_page_size",
        "batch_replay",
        "clock",
        "updates",
        "track_witness",
        "relay",
        "_keys",
        "_known",
        "_last_meta",
        "_fast_path",
        "_fast_state",
        "_visible_cache",
        "_replayed",
        "_sync_requests",
        "_sync_request_bits",
        "_sync_pages",
        "_sync_shipped",
        "_sync_redundant",
    )

    #: control-payload tags (anti-entropy handshake; see repro.core.sync).
    SYNC_REQ = sync_protocol.SYNC_REQ
    SYNC_RESP = sync_protocol.SYNC_RESP
    SYNC_STATE = sync_protocol.SYNC_STATE

    def __init__(
        self,
        pid: int,
        n: int,
        spec: UQADT,
        *,
        track_witness: bool = True,
        relay: bool = False,
        batch_replay: bool = True,
        sync_page_size: int = 64,
        fast_path: bool | None = None,
    ) -> None:
        super().__init__(pid, n)
        self.spec = spec
        if sync_page_size <= 0:
            raise ValueError("sync page size must be positive")
        #: bound on sync-resp batch size: one repair round never ships an
        #: unbounded message, however far behind the requester is.
        self.sync_page_size = sync_page_size
        #: fold the log with :meth:`UQADT.apply_batch` (vectorized /
        #: single-pass per spec) instead of one ``apply`` call per update.
        self.batch_replay = batch_replay
        self.clock = LamportClock(pid)
        self.updates: list[Stamped] = []
        #: parallel ``(clock, pid)`` key list for ``updates``: bisecting a
        #: flat tuple list needs no per-comparison key callable, and the
        #: witness/visibility machinery reads it without rebuilding pairs.
        self._keys: list[tuple[int, int]] = []
        self.track_witness = track_witness
        #: epidemic relay: re-broadcast first-seen updates.  Algorithm 1
        #: assumes *reliable* broadcast — all-or-nothing delivery even when
        #: the sender crashes mid-broadcast.  Point-to-point channels only
        #: give that for correct senders; flooding upgrades them to uniform
        #: reliable broadcast at the cost of O(n) messages per update per
        #: replica.  Needed only under crash-with-message-loss adversaries.
        self.relay = relay
        self._known: set[tuple[int, int]] = set()
        self._last_meta: dict[str, Any] = {}
        #: cached witness visibility set (satellite of Section VII-C
        #: witness cost): rebuilt lazily after a log change, so quiescent
        #: queries share one frozenset instead of allocating O(log) each.
        self._visible_cache: frozenset[tuple[int, int]] | None = None
        if fast_path is None:
            fast_path = bool(spec.commutative_updates)
        elif fast_path and not spec.commutative_updates:
            raise ValueError(
                f"{spec.name!r} does not declare commutative_updates; the "
                f"arrival-order fast path would diverge on it — run uqlint "
                f"UQ006 if the spec should be declaring commutativity"
            )
        #: Section VII-C commutative fast path: maintain the arrival-order
        #: fold beside the sorted log and answer queries from it in O(1).
        self._fast_path = fast_path
        self._fast_state: Any = spec.initial_state() if fast_path else None

    # -- observability ---------------------------------------------------------------

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        super().bind_metrics(registry)
        #: replay effort accounting (Section VII-C query replay cost).
        self._replayed = registry.counter(
            "repro_replica_replayed_updates_total",
            help="updates folded while answering queries (Section VII-C "
            "replay cost of Algorithm 1 and its optimizations)",
            label_names=("pid",),
        ).labels(pid=self.pid)
        #: anti-entropy accounting (digest size, paging, redundancy).
        self._sync_requests = registry.counter(
            "repro_sync_requests_total",
            help="anti-entropy sync requests issued",
            label_names=("pid",),
        ).labels(pid=self.pid)
        self._sync_request_bits = registry.counter(
            "repro_sync_request_bits_total",
            help="estimated wire bits of issued sync-request digests "
            "(v2 target: O(n_procs + stragglers), not O(history))",
            label_names=("pid",),
        ).labels(pid=self.pid)
        self._sync_pages = registry.counter(
            "repro_sync_pages_sent_total",
            help="bounded sync-resp pages served to requesters",
            label_names=("pid",),
        ).labels(pid=self.pid)
        self._sync_shipped = registry.counter(
            "repro_sync_updates_shipped_total",
            help="updates shipped inside sync-resp pages",
            label_names=("pid",),
        ).labels(pid=self.pid)
        self._sync_redundant = registry.counter(
            "repro_sync_redundant_updates_total",
            help="sync-resp entries that were already known (or already "
            "folded into the base state) on arrival",
            label_names=("pid",),
        ).labels(pid=self.pid)

    @property
    def replayed_updates(self) -> int:
        """Deprecated: reads ``repro_replica_replayed_updates_total``."""
        return int(self._replayed.value)

    @property
    def fast_path(self) -> bool:
        """True when queries are answered from the arrival-order fold."""
        return self._fast_path

    # -- Algorithm 1 ---------------------------------------------------------------

    def on_update(self, update: Update) -> Sequence[Any]:
        cl = self.clock.tick_value()  # line 5
        pid = self.pid
        stamped: Stamped = (cl, pid, update)
        self._known.add((cl, pid))
        self._insert(stamped)  # instantaneous self-delivery
        if self.track_witness:
            self._last_meta = {"timestamp": (cl, pid)}
        return (stamped,)  # line 6: broadcast

    def on_message(self, src: int, payload: Any) -> Sequence[Any]:
        if isinstance(payload, tuple) and payload and payload[0] == self.SYNC_REQ:
            return self._on_sync_request(payload)
        if isinstance(payload, tuple) and payload and payload[0] == self.SYNC_RESP:
            extra: list[Any] = []
            for stamped in payload[1]:
                extra.extend(self._ingest_synced(src, stamped))
            return extra
        if isinstance(payload, tuple) and payload and payload[0] == self.SYNC_STATE:
            return self._on_sync_state(src, payload)
        cl, j, update = payload
        if self._covers_uid(cl, j):
            return ()  # relayed / network duplicate
        self._known.add((cl, j))
        self.clock.merge(cl)  # line 9
        self._insert((cl, j, update))  # line 10
        return (payload,) if self.relay else ()

    # -- anti-entropy (crash-recovery & lossy-channel repair) -----------------------

    def sync_request(self) -> tuple:
        """The pull half of the anti-entropy handshake: broadcast this and
        every receiver pages back the updates this replica's digest does
        not cover (plus a state transfer if it certifies a higher floor)."""
        payload = self._sync_digest().request_payload(self.pid)
        self._sync_requests.inc()
        # Lazy import: analysis imports the sim layer for its cluster-wide
        # helpers; importing it at module load would be cyclic in spirit
        # (core must stay importable without the sim stack warmed up).
        from repro.analysis.metrics import payload_size_bits

        self._sync_request_bits.inc(payload_size_bits(payload))
        return payload

    def _sync_digest(self) -> SyncDigest:
        """This replica's knowledge summary.  Plain Algorithm 1 cannot
        certify completeness (channels may lose or reorder), so it claims
        floor 0 everywhere and lists its known ids as exception runs."""
        return SyncDigest.from_uids(self._known, self.n)

    def _covers_uid(self, cl: int, j: int) -> bool:
        """Is update id ``(cl, j)`` already incorporated locally?"""
        return (cl, j) in self._known

    def _on_sync_request(self, payload: tuple) -> Sequence[Any]:
        requester, digest = parse_sync_request(payload)
        self._serve_sync(requester, digest)
        if self._digest_claims_unknown(digest):
            # The requester has updates we lack (e.g. restored from its
            # durable log after a crash): pull them back.
            self.send_to(requester, self.sync_request())
        return ()

    def _serve_sync(self, requester: int, digest: SyncDigest) -> None:
        """Page the live updates the digest does not cover back to the
        requester (the GC subclass prepends a state transfer when the
        requester's coverage ends below the collected floor)."""
        missing = [s for s in self.updates if not digest.covers(s[0], s[1])]
        for page in pages(missing, self.sync_page_size):
            self._sync_pages.inc()
            self._sync_shipped.inc(len(page))
            self.send_to(requester, (self.SYNC_RESP, page))

    def _digest_claims_unknown(self, digest: SyncDigest) -> bool:
        """Does the requester's digest *enumerate* an id this replica
        lacks?  Deliberately ignores the requester's floors: a floor
        claims ids without naming them, so "your floor is above mine"
        cannot be answered with a targeted pull — and since ingesting
        pages never moves a floor, floor-triggered counter-requests
        between two replicas with incomparable floors would ping-pong
        forever.  Floor asymmetry is repaired by the all-to-all rounds of
        :meth:`repro.sim.cluster.Cluster.anti_entropy`, where the
        lower-floored replica issues its own request and receives pages
        or a state transfer."""
        return any(
            not self._covers_uid(cl, j) for cl, j in digest.exceptions()
        )

    def _ingest_synced(self, src: int, stamped: Stamped) -> Sequence[Any]:
        """Fold one sync-resp entry.  Unlike a live broadcast this must
        tolerate benign duplicates — a second responder may page an update
        another page (or an installed state transfer) already delivered —
        so covered entries are counted and dropped, never an error."""
        cl, j, update = stamped
        if self._covers_uid(cl, j):
            self._sync_redundant.inc()
            return ()
        self._known.add((cl, j))
        self.clock.merge(cl)
        self._insert((cl, j, update))
        return (stamped,) if self.relay else ()

    def _on_sync_state(self, src: int, payload: tuple) -> Sequence[Any]:
        raise SyncProtocolError(
            f"replica {self.pid} received a state transfer from {src} but "
            "keeps no base state to install; only garbage-collected "
            "replicas advertise accepts_state in their digests"
        )

    def load_log(self, entries: Iterable[Stamped]) -> int:
        """Rebuild from a durable update log (crash-recovery).

        Folds each entry through the normal insertion path (deduplicated,
        clock-merged), so a truncated log — an fsync that missed the tail —
        is safe: the anti-entropy handshake refetches the rest.  Returns
        the number of entries actually loaded.
        """
        loaded = 0
        for cl, j, update in entries:
            if self._covers_uid(cl, j):
                continue
            self._known.add((cl, j))
            self.clock.merge(cl)
            self._insert((cl, j, update))
            loaded += 1
        return loaded

    def on_query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        cl = self.clock.tick_value()  # line 13
        if self._fast_path:
            # Commutative fast path: the arrival-order fold equals the
            # sorted-log fold (updates commute), zero replay work.
            state = self._fast_state
        else:
            state = self._replay_state()  # lines 14-17
        if self.track_witness:
            self._last_meta = {
                "timestamp": (cl, self.pid),
                "visible": self._visible_uids(),
            }
        return self.spec.observe(state, name, args)  # line 18

    # -- internals -----------------------------------------------------------------

    def _insert(self, stamped: Stamped) -> None:
        """Insert keeping the ``(clock, pid)`` sort (line 15's order).

        ``(clock, pid)`` pairs are unique across updates, so the order is
        total without ever comparing the (orderless) update payload.  The
        common case — a fresh update sorting after everything known —
        appends in O(1); late messages bisect the flat key list.
        """
        key = (stamped[0], stamped[1])
        keys = self._keys
        if not keys or key > keys[-1]:
            keys.append(key)
            self.updates.append(stamped)
            pos = len(keys) - 1
        else:
            pos = bisect_left(keys, key)
            keys.insert(pos, key)
            self.updates.insert(pos, stamped)
        self._visible_cache = None
        self._after_insert(pos, stamped)

    def _after_insert(self, pos: int, stamped: Stamped) -> None:
        """Hook running after ``stamped`` landed at ``pos`` in the sorted
        log.  The base class feeds the commutative fast-path fold;
        subclasses add rollback (checkpoint) or undo/redo maintenance."""
        if self._fast_path:
            self._fast_state = self.spec.apply(self._fast_state, stamped[2])

    def _replay_state(self) -> Any:
        """Full replay — lines 14-17 (optionally batch-folded).  Charges
        the folded updates to the Section VII-C replay-cost counter; only
        queries may call this (introspection uses :meth:`_peek_state`)."""
        self._replayed.inc(len(self.updates))
        if self.batch_replay:
            return self.spec.apply_batch(
                self.spec.initial_state(), [u for _, _, u in self.updates]
            )
        state = self.spec.initial_state()
        for _, _, update in self.updates:
            state = self.spec.apply(state, update)
        return state

    def _peek_state(self) -> Any:
        """The state a read-all query would observe, *without* charging
        the query replay-cost counter or mutating any replay cache.

        Introspection — :meth:`local_state`, convergence checks, the
        anti-entropy agreement test — used to run through
        :meth:`_replay_state` and inflate
        ``repro_replica_replayed_updates_total``, corrupting the
        per-query replay-cost metric the benches gate on.
        """
        if self._fast_path:
            return self._fast_state
        if self.batch_replay:
            return self.spec.apply_batch(
                self.spec.initial_state(), [u for _, _, u in self.updates]
            )
        state = self.spec.initial_state()
        for _, _, update in self.updates:
            state = self.spec.apply(state, update)
        return state

    def _visible_uids(self) -> frozenset[tuple[int, int]]:
        """The witness visibility set: every known update's ``(clock,
        pid)``.  Cached until the log changes, so a run of quiescent
        queries shares a single frozenset (allocation-free capture)."""
        cache = self._visible_cache
        if cache is None:
            cache = self._visible_cache = frozenset(self._keys)
        return cache

    # -- introspection --------------------------------------------------------------

    def local_state(self) -> Any:
        return self._peek_state()

    def witness_meta(self) -> dict[str, Any]:
        meta, self._last_meta = self._last_meta, {}
        return meta

    @property
    def log_length(self) -> int:
        return len(self.updates)

    def known_timestamps(self) -> list[tuple[int, int]]:
        return list(self._keys)
