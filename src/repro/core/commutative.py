"""Section VII-C fast path: commutative objects need no log at all.

"If all the update operations commute in the sequential specification, all
linearizations would lead to the same state so a naive implementation,
that applies the updates on a replica as soon as the notification is
received, achieves update consistency."  This module is that naive
implementation — the bridge between the paper and pure CRDTs like the
counter and the grow-only set.

:class:`CommutativeReplica` keeps only the running state: O(1) updates and
queries, O(state) memory, one broadcast per update.  The constructor
refuses non-commutative specifications, because for those apply-on-receipt
famously diverges (tested in ``tests/core/test_commutative.py`` with the
set's insert/delete conflict).

This is the *log-free* end of the fast-path spectrum:
:class:`~repro.core.universal.UniversalReplica` gets the same O(1) query
cost automatically on commutative specs but keeps the sorted log for
anti-entropy, persistence and GC.  Use this class when those services are
not needed and O(state) memory is the point.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.adt import UQADT, Update
from repro.sim.replica import Replica
from repro.util.clocks import LamportClock


class CommutativeReplica(Replica):
    """Apply-on-receipt replica for commutative UQ-ADTs."""

    __slots__ = (
        "spec",
        "clock",
        "_state",
        "applied",
        "track_witness",
        "_last_meta",
        "_visible",
        "_visible_cache",
    )

    def __init__(
        self,
        pid: int,
        n: int,
        spec: UQADT,
        *,
        track_witness: bool = False,
    ) -> None:
        if not spec.commutative_updates:
            raise ValueError(
                f"{spec.name!r} updates do not commute; apply-on-receipt "
                f"would diverge — use the universal construction"
            )
        super().__init__(pid, n)
        self.spec = spec
        self.clock = LamportClock(pid)  # kept for witness timestamps only
        self._state: Any = spec.initial_state()
        self.applied = 0
        self.track_witness = track_witness
        self._last_meta: dict[str, Any] = {}
        self._visible: set[tuple[int, int]] = set()
        #: quiescent queries share one frozenset (allocation-free capture).
        self._visible_cache: frozenset[tuple[int, int]] | None = None

    def on_update(self, update: Update) -> Sequence[Any]:
        cl = self.clock.tick_value()
        self._state = self.spec.apply(self._state, update)
        self.applied += 1
        if self.track_witness:
            self._visible.add((cl, self.pid))
            self._visible_cache = None
            self._last_meta = {"timestamp": (cl, self.pid)}
        return [(cl, self.pid, update)]

    def on_message(self, src: int, payload) -> Sequence[Any]:
        cl, j, update = payload
        self.clock.merge(cl)
        self._state = self.spec.apply(self._state, update)
        self.applied += 1
        if self.track_witness:
            self._visible.add((cl, j))
            self._visible_cache = None
        return ()

    def on_query(self, name: str, args: tuple[Hashable, ...] = ()) -> Any:
        if self.track_witness:
            cl = self.clock.tick_value()
            visible = self._visible_cache
            if visible is None:
                visible = self._visible_cache = frozenset(self._visible)
            self._last_meta = {
                "timestamp": (cl, self.pid),
                "visible": visible,
            }
        return self.spec.observe(self._state, name, args)

    def local_state(self) -> Any:
        return self._state

    def witness_meta(self) -> dict[str, Any]:
        meta, self._last_meta = self._last_meta, {}
        return meta
